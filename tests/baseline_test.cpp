// baseline_test.cpp — the ICCAD'17 SBA and GDA baselines.
#include <gtest/gtest.h>

#include "baseline/gda.h"
#include "baseline/sba.h"
#include "models/feature_cache.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fsa::baseline {
namespace {

struct Fixture {
  data::Dataset train = testutil::make_blobs(600, 31);
  data::Dataset test = testutil::make_blobs(300, 32);
  data::Dataset pool = testutil::make_blobs(200, 33);
  nn::Sequential net = testutil::make_blob_net(13);
  Tensor pool_feats, test_feats;
  std::vector<std::int64_t> pool_preds;

  Fixture() {
    testutil::train_blob_net(net, train, test);
    const std::size_t cut = net.index_of("fc2");
    pool_feats = models::compute_features(net, cut, pool.images());
    test_feats = models::compute_features(net, cut, test.images());
    pool_preds = models::head_predictions(net, cut, pool_feats);
  }

  core::AttackSpec spec(std::int64_t s, std::int64_t r, std::uint64_t seed) {
    return core::make_spec(pool_feats, pool.labels(), pool_preds, s, r, 10, seed);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(Sba, MisclassifiesTheTargetImage) {
  auto& f = fixture();
  const core::ParamMask mask = core::ParamMask::make(f.net, {"fc2"});
  const Tensor theta0 = mask.gather_values();
  const core::AttackSpec spec = f.spec(1, 1, 1);
  const Tensor feat = spec.features.slice0(0, 1);
  const std::int64_t target = spec.labels[0];

  const SbaResult res = single_bias_attack(f.net, "fc2", feat, target);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.bias_index, target);
  EXPECT_GE(res.new_value, res.old_value);
  const Tensor logits = f.net.forward_from(f.net.index_of("fc2"), feat);
  EXPECT_EQ(ops::argmax_rows(logits)[0], target);
  mask.scatter_values(theta0);
}

TEST(Sba, ModifiesExactlyOneParameter) {
  auto& f = fixture();
  const core::ParamMask mask = core::ParamMask::make(f.net, {"fc2"});
  const Tensor theta0 = mask.gather_values();
  const core::AttackSpec spec = f.spec(1, 1, 2);
  single_bias_attack(f.net, "fc2", spec.features.slice0(0, 1), spec.labels[0]);
  const Tensor delta = ops::sub(mask.gather_values(), theta0);
  EXPECT_LE(ops::l0_norm(delta), 1);
  mask.scatter_values(theta0);
}

TEST(Sba, CollapsesGlobalAccuracy) {
  // The paper's criticism: SBA has no stealth — the raised bias drags many
  // other images into the target class.
  auto& f = fixture();
  const core::ParamMask mask = core::ParamMask::make(f.net, {"fc2"});
  const Tensor theta0 = mask.gather_values();
  const std::size_t cut = f.net.index_of("fc2");
  const double before = models::head_accuracy(f.net, cut, f.test_feats, f.test.labels());
  const core::AttackSpec spec = f.spec(1, 1, 3);
  single_bias_attack(f.net, "fc2", spec.features.slice0(0, 1), spec.labels[0]);
  const double after = models::head_accuracy(f.net, cut, f.test_feats, f.test.labels());
  EXPECT_LT(after, before - 0.02);  // visibly degraded
  mask.scatter_values(theta0);
}

TEST(Sba, RejectsNonDenseAndBadShapes) {
  auto& f = fixture();
  EXPECT_THROW(single_bias_attack(f.net, "relu1", Tensor(Shape({1, 32})), 0),
               std::invalid_argument);
  EXPECT_THROW(single_bias_attack(f.net, "fc2", Tensor(Shape({1, 3})), 0),
               std::invalid_argument);
  EXPECT_THROW(single_bias_attack(f.net, "fc2", Tensor(Shape({1, 32})), 99),
               std::invalid_argument);
}

TEST(Gda, InjectsFaults) {
  auto& f = fixture();
  const core::ParamMask mask = core::ParamMask::make(f.net, {"fc2"});
  GradientDescentAttack gda(f.net, mask);
  const core::AttackSpec spec = f.spec(2, 10, 4);
  const GdaResult res = gda.run(spec);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(res.targets_hit, 2);
  EXPECT_GT(res.l0, 0);
}

TEST(Gda, RestoresNetwork) {
  auto& f = fixture();
  const core::ParamMask mask = core::ParamMask::make(f.net, {"fc2"});
  const Tensor before = mask.gather_values();
  GradientDescentAttack gda(f.net, mask);
  gda.run(f.spec(1, 4, 5));
  EXPECT_EQ(mask.gather_values(), before);
}

TEST(Gda, CompressionShrinksSupport) {
  auto& f = fixture();
  const core::ParamMask mask = core::ParamMask::make(f.net, {"fc2"});
  GradientDescentAttack gda(f.net, mask);
  const core::AttackSpec spec = f.spec(1, 4, 6);
  GdaConfig no_compress;
  no_compress.max_compress_rounds = 0;
  GdaConfig compress;
  const GdaResult raw = gda.run(spec, no_compress);
  const GdaResult packed = gda.run(spec, compress);
  EXPECT_TRUE(raw.success);
  EXPECT_TRUE(packed.success);
  EXPECT_LT(packed.l0, raw.l0);
}

TEST(Gda, CompressedDeltaStillSucceedsWhenApplied) {
  auto& f = fixture();
  const core::ParamMask mask = core::ParamMask::make(f.net, {"fc2"});
  GradientDescentAttack gda(f.net, mask);
  const core::AttackSpec spec = f.spec(2, 6, 7);
  const GdaResult res = gda.run(spec);
  ASSERT_TRUE(res.success);
  const Tensor theta0 = mask.gather_values();
  Tensor theta = theta0;
  theta += res.delta;
  mask.scatter_values(theta);
  const Tensor logits = f.net.forward_from(f.net.index_of("fc2"), spec.features.slice0(0, 2));
  const auto preds = ops::argmax_rows(logits);
  EXPECT_EQ(preds[0], spec.labels[0]);
  EXPECT_EQ(preds[1], spec.labels[1]);
  mask.scatter_values(theta0);
}

TEST(Gda, IgnoresMaintainImages) {
  // GDA optimizes only the S faults; feeding extra maintain rows must not
  // change the fault outcome (they are sliced away).
  auto& f = fixture();
  const core::ParamMask mask = core::ParamMask::make(f.net, {"fc2"});
  GradientDescentAttack gda(f.net, mask);
  core::AttackSpec small = f.spec(1, 1, 8);
  core::AttackSpec padded = f.spec(1, 20, 8);
  const GdaResult a = gda.run(small);
  const GdaResult b = gda.run(padded);
  EXPECT_EQ(a.success, b.success);
}

}  // namespace
}  // namespace fsa::baseline
