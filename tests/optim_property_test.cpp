// optim_property_test.cpp — parameterized convergence sweep: every
// optimizer config the trainer exposes must decrease a convex quadratic
// and reach the optimum given enough steps.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "optim/adam.h"
#include "optim/sgd.h"

namespace fsa::optim {
namespace {

struct OptCase {
  enum class Kind { kSgd, kMomentum, kAdam } kind;
  double lr;
  std::int64_t steps;
};

class OptimizerSweep : public ::testing::TestWithParam<OptCase> {
 protected:
  /// Anisotropic quadratic ½ Σ wᵢ(xᵢ − tᵢ)²: harder than isotropic, with
  /// per-coordinate curvature spread over two orders of magnitude.
  struct Problem {
    nn::Parameter x{"x", Tensor::full(Shape({8}), 4.0f), nn::Parameter::Kind::kWeight};
    Tensor target = Tensor::from_vector({1, -1, 2, 0, -2, 3, 0.5f, -0.5f});
    Tensor curvature = Tensor::from_vector({0.05f, 0.1f, 0.3f, 0.5f, 1.0f, 1.5f, 2.5f, 5.0f});

    double loss_and_grad() {
      x.zero_grad();
      double loss = 0.0;
      for (std::size_t i = 0; i < x.value().size(); ++i) {
        const float e = x.value()[i] - target[i];
        x.grad()[i] = curvature[i] * e;
        loss += 0.5 * curvature[i] * e * e;
      }
      return loss;
    }
  };

  std::unique_ptr<Optimizer> make(nn::Parameter* p) const {
    switch (GetParam().kind) {
      case OptCase::Kind::kSgd:
        return std::make_unique<SGD>(std::vector<nn::Parameter*>{p}, GetParam().lr);
      case OptCase::Kind::kMomentum:
        return std::make_unique<SGD>(std::vector<nn::Parameter*>{p}, GetParam().lr, 0.9);
      case OptCase::Kind::kAdam:
        return std::make_unique<Adam>(std::vector<nn::Parameter*>{p}, GetParam().lr);
    }
    return nullptr;
  }
};

TEST_P(OptimizerSweep, ReachesTheOptimum) {
  Problem prob;
  auto opt = make(&prob.x);
  const double initial = prob.loss_and_grad();
  for (std::int64_t i = 0; i < GetParam().steps; ++i) {
    prob.loss_and_grad();
    opt->step();
  }
  const double final = prob.loss_and_grad();
  EXPECT_LT(final, initial * 1e-3) << "final loss " << final;
}

TEST_P(OptimizerSweep, LossIsEventuallyMonotone) {
  // Allow transient overshoot (momentum/Adam) but demand that the loss at
  // checkpoints k·steps/4 is non-increasing from the halfway point on.
  Problem prob;
  auto opt = make(&prob.x);
  std::vector<double> checkpoints;
  for (std::int64_t i = 0; i < GetParam().steps; ++i) {
    const double loss = prob.loss_and_grad();
    if (i % (GetParam().steps / 4) == 0) checkpoints.push_back(loss);
    opt->step();
  }
  ASSERT_GE(checkpoints.size(), 3u);
  EXPECT_LE(checkpoints[checkpoints.size() - 1], checkpoints[checkpoints.size() - 2] + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, OptimizerSweep,
    ::testing::Values(OptCase{OptCase::Kind::kSgd, 0.3, 2000},
                      OptCase{OptCase::Kind::kSgd, 0.05, 8000},
                      OptCase{OptCase::Kind::kMomentum, 0.05, 2000},
                      OptCase{OptCase::Kind::kMomentum, 0.01, 6000},
                      OptCase{OptCase::Kind::kAdam, 0.1, 2000},
                      OptCase{OptCase::Kind::kAdam, 0.02, 8000}),
    [](const ::testing::TestParamInfo<OptCase>& info) {
      const char* kind = info.param.kind == OptCase::Kind::kSgd        ? "sgd"
                         : info.param.kind == OptCase::Kind::kMomentum ? "momentum"
                                                                       : "adam";
      return std::string(kind) + "_lr" + std::to_string(static_cast<int>(info.param.lr * 1000));
    });

}  // namespace
}  // namespace fsa::optim
