// rng_test.cpp — determinism and distribution sanity of the RNG.
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.h"

namespace fsa {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsCloseToStandard) {
  Rng rng(10);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(11);
  const int n = 30000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, UniformIntWithinRange) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_int(10), 10u);
}

TEST(Rng, UniformIntCoversAllResidues) {
  Rng rng(13);
  std::array<int, 10> counts{};
  for (int i = 0; i < 10000; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) EXPECT_GT(c, 700);
}

TEST(Rng, BernoulliFrequencyTracksP) {
  Rng rng(14);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(15);
  Rng child = a.fork();
  Rng b(15);
  Rng child_b = b.fork();
  // Forks of identical parents match each other…
  for (int i = 0; i < 10; ++i) EXPECT_EQ(child.next_u64(), child_b.next_u64());
  // …and do not replay the parent stream.
  Rng parent_replay(15);
  parent_replay.next_u64();  // consume the draw fork() used
  Rng c(15);
  Rng fork_c = c.fork();
  EXPECT_NE(fork_c.next_u64(), parent_replay.next_u64());
}

TEST(SplitMix, KnownGoldenFirstValue) {
  // SplitMix64 reference: seed 0 produces 0xE220A8397B1DCDAF first.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace fsa
