// optim_test.cpp — optimizers, LR schedules, and the training loop.
#include <gtest/gtest.h>

#include <memory>

#include "nn/dense.h"
#include "nn/pool.h"
#include "optim/adam.h"
#include "optim/lr_schedule.h"
#include "optim/sgd.h"
#include "optim/trainer.h"
#include "tensor/ops.h"

namespace fsa::optim {
namespace {

/// A single free parameter wrapped for optimizers; loss = ½‖x − target‖².
struct QuadraticProblem {
  nn::Parameter param;
  Tensor target;

  QuadraticProblem(std::int64_t n, float start, float goal)
      : param("x", Tensor::full(Shape({n}), start), nn::Parameter::Kind::kWeight),
        target(Tensor::full(Shape({n}), goal)) {}

  double loss_and_grad() {
    param.zero_grad();
    double loss = 0.0;
    for (std::size_t i = 0; i < param.value().size(); ++i) {
      const float e = param.value()[i] - target[i];
      param.grad()[i] = e;
      loss += 0.5 * e * e;
    }
    return loss;
  }
};

TEST(SGD, ConvergesOnQuadratic) {
  QuadraticProblem prob(8, 5.0f, -1.0f);
  SGD opt({&prob.param}, 0.1);
  for (int i = 0; i < 200; ++i) {
    prob.loss_and_grad();
    opt.step();
  }
  EXPECT_LT(prob.loss_and_grad(), 1e-6);
}

TEST(SGD, MomentumAcceleratesConvergence) {
  QuadraticProblem plain(8, 5.0f, 0.0f), mom(8, 5.0f, 0.0f);
  SGD o1({&plain.param}, 0.01);
  SGD o2({&mom.param}, 0.01, 0.9);
  for (int i = 0; i < 50; ++i) {
    plain.loss_and_grad();
    o1.step();
    mom.loss_and_grad();
    o2.step();
  }
  EXPECT_LT(mom.loss_and_grad(), plain.loss_and_grad());
}

TEST(SGD, WeightDecayShrinksParams) {
  nn::Parameter p("x", Tensor::full(Shape({4}), 1.0f), nn::Parameter::Kind::kWeight);
  SGD opt({&p}, 0.1, 0.0, /*weight_decay=*/0.5);
  p.zero_grad();  // zero task gradient: only decay acts
  opt.step();
  EXPECT_NEAR(p.value()[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Adam, ConvergesOnQuadratic) {
  QuadraticProblem prob(8, 5.0f, 2.0f);
  Adam opt({&prob.param}, 0.1);
  for (int i = 0; i < 500; ++i) {
    prob.loss_and_grad();
    opt.step();
  }
  EXPECT_LT(prob.loss_and_grad(), 1e-4);
}

TEST(Adam, StepSizeBoundedByLr) {
  // Adam's per-coordinate step is at most ~lr regardless of gradient scale.
  nn::Parameter p("x", Tensor::zeros(Shape({1})), nn::Parameter::Kind::kWeight);
  Adam opt({&p}, 0.01);
  p.grad()[0] = 1e6f;
  opt.step();
  EXPECT_LT(std::fabs(p.value()[0]), 0.011f);
}

TEST(ZeroGrad, ClearsAllParams) {
  nn::Parameter a("a", Tensor::zeros(Shape({2})), nn::Parameter::Kind::kWeight);
  nn::Parameter b("b", Tensor::zeros(Shape({2})), nn::Parameter::Kind::kBias);
  SGD opt({&a, &b}, 0.1);
  a.grad().fill(3.0f);
  b.grad().fill(4.0f);
  opt.zero_grad();
  EXPECT_EQ(a.grad()[0], 0.0f);
  EXPECT_EQ(b.grad()[1], 0.0f);
}

TEST(StepDecay, DecaysAtBoundaries) {
  StepDecay s(1.0, 0.5, 2);
  EXPECT_DOUBLE_EQ(s.at_epoch(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at_epoch(1), 1.0);
  EXPECT_DOUBLE_EQ(s.at_epoch(2), 0.5);
  EXPECT_DOUBLE_EQ(s.at_epoch(4), 0.25);
}

TEST(CosineDecay, EndpointsAndMonotone) {
  CosineDecay c(1.0, 0.1, 10);
  EXPECT_NEAR(c.at_epoch(0), 1.0, 1e-9);
  EXPECT_NEAR(c.at_epoch(10), 0.1, 1e-9);
  EXPECT_GT(c.at_epoch(3), c.at_epoch(7));
}

data::Dataset make_linearly_separable(std::int64_t n, std::uint64_t seed) {
  // Two blobs in a 1×2×2 "image": class 0 bright top-left, class 1 bright
  // bottom-right. Trivially separable — the trainer must reach ~100%.
  Rng rng(seed);
  Tensor images(Shape({n, 1, 2, 2}));
  std::vector<std::int64_t> labels(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t cls = static_cast<std::int64_t>(rng.uniform_int(2));
    labels[static_cast<std::size_t>(i)] = cls;
    for (int px = 0; px < 4; ++px)
      images[static_cast<std::size_t>(i * 4 + px)] =
          static_cast<float>(rng.normal(0.0, 0.1));
    images[static_cast<std::size_t>(i * 4 + (cls == 0 ? 0 : 3))] += 1.0f;
  }
  return data::Dataset(std::move(images), std::move(labels), 2);
}

TEST(Trainer, LearnsSeparableToy) {
  const data::Dataset train = make_linearly_separable(256, 1);
  const data::Dataset test = make_linearly_separable(128, 2);
  Rng rng(3);
  nn::Sequential net;
  net.add(std::make_unique<nn::Flatten>("flatten"));
  net.add(std::make_unique<nn::Dense>("fc", 4, 2, rng));
  Adam opt(net.params(), 0.05);
  Trainer trainer(net, opt);
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 16;
  const EpochStats last = trainer.fit(train, cfg);
  EXPECT_GT(last.train_accuracy, 0.97);
  EXPECT_GT(Trainer::accuracy(net, test), 0.97);
}

TEST(Trainer, LrScheduleIsApplied) {
  const data::Dataset train = make_linearly_separable(32, 4);
  Rng rng(5);
  nn::Sequential net;
  net.add(std::make_unique<nn::Flatten>("flatten"));
  net.add(std::make_unique<nn::Dense>("fc", 4, 2, rng));
  SGD opt(net.params(), 1.0);
  Trainer trainer(net, opt);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.lr_schedule = [](std::int64_t e) { return 0.5 / static_cast<double>(e + 1); };
  std::vector<double> seen;
  cfg.on_epoch = [&](const EpochStats&) { seen.push_back(opt.lr()); };
  trainer.fit(train, cfg);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0], 0.5);
  EXPECT_DOUBLE_EQ(seen[2], 0.5 / 3.0);
}

TEST(Trainer, EvaluateMatchesManualCount) {
  const data::Dataset test = make_linearly_separable(64, 6);
  Rng rng(7);
  nn::Sequential net;
  net.add(std::make_unique<nn::Flatten>("flatten"));
  net.add(std::make_unique<nn::Dense>("fc", 4, 2, rng));
  const auto [loss, acc] = Trainer::evaluate(net, test);
  // Recompute accuracy by hand.
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < test.size(); ++i) {
    const Tensor logits = net.forward(test.image(i));
    if (ops::argmax_rows(logits)[0] == test.label(i)) ++correct;
  }
  EXPECT_NEAR(acc, static_cast<double>(correct) / static_cast<double>(test.size()), 1e-9);
  EXPECT_GT(loss, 0.0);
}

}  // namespace
}  // namespace fsa::optim
