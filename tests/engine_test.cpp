// engine_test.cpp — the unified attack engine: registry, report JSON,
// attacker adapters, network cloning, and the SweepRunner determinism
// contract (bitwise-identical rows for 1 and N workers).
#include <gtest/gtest.h>

#include <filesystem>

#include "backend/compute_backend.h"
#include "compile/compile.h"
#include "engine/attackers.h"
#include "engine/registry.h"
#include "engine/sweep.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "test_util.h"

namespace fsa::engine {
namespace {

// ---- fixture: a ZooModel around the fast blob substrate ----------------------

struct Fixture {
  models::ZooModel model;
  std::string cache_dir;

  Fixture() {
    cache_dir = ::testing::TempDir() + "fsa_engine_test";
    std::filesystem::remove_all(cache_dir);
    model.name = "blobs";
    model.net = testutil::make_blob_net(6);
    model.train = testutil::make_blobs(600, 21);
    model.test = testutil::make_blobs(300, 22);
    model.attack_pool = testutil::make_blobs(400, 23);
    model.test_accuracy = testutil::train_blob_net(model.net, model.train, model.test);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

core::AttackSpec blob_spec(eval::AttackBench& bench, std::int64_t s, std::int64_t r,
                           std::uint64_t seed) {
  return bench.spec(s, r, seed);
}

// ---- registry -----------------------------------------------------------------

TEST(Registry, BuiltinsAreRegistered) {
  const auto names = attacker_names();
  for (const char* expected : {"fsa-l0", "fsa-l2", "fsa-l1", "gda", "sba"})
    EXPECT_TRUE(has_attacker(expected)) << expected;
  EXPECT_GE(names.size(), 5u);
  EXPECT_EQ(make_attacker("fsa-l0")->name(), "fsa-l0");
  EXPECT_EQ(make_attacker("gda")->name(), "gda");
}

TEST(Registry, UnknownNameThrowsListingKnown) {
  try {
    make_attacker("does-not-exist");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("does-not-exist"), std::string::npos);
    EXPECT_NE(msg.find("fsa-l0"), std::string::npos);  // lists known methods
  }
}

TEST(Registry, CustomRegistrationWins) {
  register_attacker("custom-test", [] {
    core::FaultSneakingConfig cfg;
    return std::make_unique<FsaAttacker>(cfg, "custom-test");
  });
  EXPECT_TRUE(has_attacker("custom-test"));
  EXPECT_EQ(make_attacker("custom-test")->name(), "custom-test");
}

// ---- AttackReport JSON ---------------------------------------------------------

TEST(AttackReport, JsonRoundTrip) {
  AttackReport r;
  r.method = "fsa-l0";
  r.backend = "packed";
  r.surface = "fc2[weights+biases] (330 params)";
  r.S = 3;
  r.R = 50;
  r.seed = 9007199254740993ULL;  // > 2^53: must not squeeze through a double
  r.l0 = 17;
  r.l2 = 1.2345678901234567;
  r.targets_hit = 2;
  r.maintained = 47;
  r.success_rate = 2.0 / 3.0;
  r.all_targets_hit = false;
  r.all_maintained = true;
  r.attempts = 2;
  r.iterations = 601;
  r.seconds = 0.125;
  r.test_accuracy = 0.9875;
  r.clean_accuracy = 0.995;

  const std::string text = r.to_json().dump(2);
  const AttackReport back = AttackReport::from_json(eval::Json::parse(text));
  EXPECT_EQ(back.method, r.method);
  EXPECT_EQ(back.backend, r.backend);
  EXPECT_EQ(back.surface, r.surface);
  EXPECT_EQ(back.S, r.S);
  EXPECT_EQ(back.R, r.R);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.l0, r.l0);
  EXPECT_EQ(back.l2, r.l2);  // %.17g round-trips doubles exactly
  EXPECT_EQ(back.targets_hit, r.targets_hit);
  EXPECT_EQ(back.maintained, r.maintained);
  EXPECT_EQ(back.success_rate, r.success_rate);
  EXPECT_EQ(back.all_targets_hit, r.all_targets_hit);
  EXPECT_EQ(back.all_maintained, r.all_maintained);
  EXPECT_EQ(back.attempts, r.attempts);
  EXPECT_EQ(back.iterations, r.iterations);
  EXPECT_EQ(back.seconds, r.seconds);
  EXPECT_EQ(back.test_accuracy, r.test_accuracy);
  EXPECT_EQ(back.clean_accuracy, r.clean_accuracy);
}

TEST(AttackReport, UnmeasuredAccuracySerializesAsNull) {
  AttackReport r;  // test_accuracy defaults to -1 (not measured)
  const eval::Json j = r.to_json();
  EXPECT_TRUE(j.at("test_accuracy").is_null());
  EXPECT_DOUBLE_EQ(AttackReport::from_json(j).test_accuracy, -1.0);
}

TEST(Json, ParseRejectsGarbage) {
  EXPECT_THROW(eval::Json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(eval::Json::parse("[1, 2"), std::runtime_error);
  EXPECT_THROW(eval::Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(eval::Json::parse("1.2.3"), std::runtime_error);
  EXPECT_THROW(eval::Json::parse("1-2"), std::runtime_error);
  EXPECT_THROW(eval::Json::parse("\"\\uzzzz\""), std::runtime_error);
  EXPECT_THROW(eval::Json::parse("\"\\u00g1\""), std::runtime_error);
}

TEST(Json, EscapesRoundTrip) {
  eval::Json j = eval::Json::object();
  j.set("s", eval::Json::string("a\"b\\c\nd\te"));
  const eval::Json back = eval::Json::parse(j.dump());
  EXPECT_EQ(back.at("s").as_string(), "a\"b\\c\nd\te");
}

// ---- network cloning ------------------------------------------------------------

TEST(Clone, IsDeepAndEquivalent) {
  auto& f = fixture();
  nn::Sequential clone = f.model.net.clone();
  ASSERT_EQ(clone.size(), f.model.net.size());

  // Same forward behaviour...
  const Tensor x = f.model.test.images().slice0(0, 8);
  const Tensor y0 = f.model.net.forward(x);
  const Tensor y1 = clone.forward(x);
  EXPECT_EQ(y0, y1);

  // ...but fully independent storage: perturbing the clone leaves the
  // original untouched.
  const core::ParamMask clone_mask = core::ParamMask::make(clone, {"fc2"});
  Tensor theta = clone_mask.gather_values();
  const Tensor original = core::ParamMask::make(f.model.net, {"fc2"}).gather_values();
  theta *= 2.0f;
  clone_mask.scatter_values(theta);
  EXPECT_EQ(core::ParamMask::make(f.model.net, {"fc2"}).gather_values(), original);
  EXPECT_NE(clone_mask.gather_values(), original);
}

// ---- attacker adapters ----------------------------------------------------------

TEST(Attackers, FsaAdapterMatchesDirectRunAndRestoresNet) {
  auto& f = fixture();
  eval::AttackBench bench(f.model, fixture().cache_dir, {"fc2"});
  const core::AttackSpec spec = blob_spec(bench, 1, 10, 31);
  const Tensor before = bench.attack().mask().gather_values();

  core::FaultSneakingConfig cfg;
  const FsaAttacker adapter(cfg);
  const AttackReport rep = adapter.run(f.model.net, bench.attack().mask(), spec);
  EXPECT_EQ(bench.attack().mask().gather_values(), before);  // net restored

  core::FaultSneakingAttack direct(f.model.net, {"fc2"});
  const core::FaultSneakingResult res = direct.run(spec, cfg);
  EXPECT_EQ(rep.delta, res.delta);  // adapter is a faithful wrapper
  EXPECT_EQ(rep.l0, res.l0);
  EXPECT_EQ(rep.targets_hit, res.targets_hit);
  EXPECT_EQ(rep.maintained, res.maintained);
  EXPECT_EQ(rep.S, spec.S);
  EXPECT_EQ(rep.R, spec.R());
}

TEST(Attackers, SbaAdapterFlipsOneBias) {
  auto& f = fixture();
  eval::AttackBench bench(f.model, fixture().cache_dir, {"fc2"});
  const core::AttackSpec spec = blob_spec(bench, 1, 10, 32);
  const Tensor before = bench.attack().mask().gather_values();

  const SbaAttacker sba;
  const AttackReport rep = sba.run(f.model.net, bench.attack().mask(), spec);
  EXPECT_EQ(bench.attack().mask().gather_values(), before);
  EXPECT_LE(rep.l0, 1);  // one bias (0 if the target already led)
  EXPECT_TRUE(rep.all_targets_hit);
  EXPECT_EQ(rep.method, "sba");
}

TEST(Attackers, SbaRequiresBiasesInSurface) {
  auto& f = fixture();
  eval::AttackBench bench(f.model, fixture().cache_dir, {"fc2"}, /*weights=*/true,
                          /*biases=*/false);
  const core::AttackSpec spec = blob_spec(bench, 1, 5, 33);
  const SbaAttacker sba;
  EXPECT_THROW((void)sba.run(f.model.net, bench.attack().mask(), spec), std::invalid_argument);
}

TEST(Attackers, GdaAdapterReportsWholeSpec) {
  auto& f = fixture();
  eval::AttackBench bench(f.model, fixture().cache_dir, {"fc2"});
  const core::AttackSpec spec = blob_spec(bench, 1, 12, 34);
  const Tensor before = bench.attack().mask().gather_values();

  const GdaAttacker gda;
  const AttackReport rep = gda.run(f.model.net, bench.attack().mask(), spec);
  EXPECT_EQ(bench.attack().mask().gather_values(), before);
  EXPECT_EQ(rep.R, 12);  // maintained rows measured even though GDA ignores them
  EXPECT_GE(rep.maintained, 0);
  EXPECT_EQ(rep.l0, ops::l0_norm(rep.delta));
}

// ---- Sweep builder ---------------------------------------------------------------

TEST(SweepBuilder, CartesianProductAndSeedFn) {
  Sweep sweep;
  sweep.methods({"fsa-l0", "gda"})
      .layer_sets({{"fc1"}, {"fc2"}})
      .sr_pairs({{1, 10}, {2, 20}, {3, 30}})
      .seed_fn([](std::int64_t s, std::int64_t r) { return static_cast<std::uint64_t>(100 * s + r); });
  const auto specs = sweep.build();
  ASSERT_EQ(specs.size(), 2u * 2u * 3u);
  EXPECT_EQ(specs[0].method, "fsa-l0");
  EXPECT_EQ(specs[0].seed, 110u);  // 100·1 + 10
  EXPECT_EQ(specs.back().method, "gda");
  EXPECT_EQ(specs.back().seed, 330u);

  // seed_fn REPLACES the seeds list — no duplicate instances per cell.
  sweep.seeds({1, 2, 3});
  sweep.seed_fn([](std::int64_t s, std::int64_t r) { return static_cast<std::uint64_t>(s + r); });
  EXPECT_EQ(sweep.build().size(), 2u * 2u * 3u);
}

TEST(SweepBuilder, RModesAndExplicitSpecs) {
  Sweep equal;
  equal.s_values({1, 4}).r_equals_s();
  const auto eq_specs = equal.build();
  ASSERT_EQ(eq_specs.size(), 2u);
  EXPECT_EQ(eq_specs[1].S, 4);
  EXPECT_EQ(eq_specs[1].R, 4);

  Sweep offset;
  offset.s_values({2}).r_offset(100);
  EXPECT_EQ(offset.build()[0].R, 102);

  Sweep only_explicit;
  SweepSpec spec;
  spec.tag = "point";
  // Per-instance OPTIONS (accuracy/policy/attacker) must not conjure a
  // phantom default cartesian cell next to explicitly added specs.
  only_explicit.measure_accuracy(false);
  only_explicit.add(spec);
  const auto ex = only_explicit.build();
  ASSERT_EQ(ex.size(), 1u);  // no cartesian expansion when only add() was used
  EXPECT_EQ(ex[0].tag, "point");
}

// ---- SweepRunner ------------------------------------------------------------------

Sweep small_sweep() {
  Sweep sweep;
  sweep.methods({"fsa-l0", "gda", "sba"}).layers({"fc2"}).sr_pairs({{1, 8}, {2, 12}}).seeds({3});
  return sweep;
}

TEST(SweepRunner, RowsMatchRequestOrderAndLookupWorks) {
  auto& f = fixture();
  SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult result = runner.run(small_sweep());
  ASSERT_EQ(result.rows.size(), 6u);
  EXPECT_EQ(result.rows[0].report.method, "fsa-l0");
  EXPECT_EQ(result.rows[0].spec.S, 1);
  EXPECT_EQ(result.rows[5].report.method, "sba");
  EXPECT_EQ(result.rows[5].spec.R, 12);
  EXPECT_EQ(&result.row("gda", 2, 12), &result.rows[3]);
  EXPECT_THROW(result.row("fsa-l0", 99, 99), std::out_of_range);
  EXPECT_THROW(result.row_tagged("missing"), std::out_of_range);
  for (const auto& row : result.rows) {
    EXPECT_GE(row.report.test_accuracy, 0.0);  // measured by default
    EXPECT_EQ(row.report.l0, ops::l0_norm(row.report.delta));
  }
}

TEST(SweepRunner, BitwiseIdenticalRowsForOneAndManyWorkers) {
  auto& f = fixture();
  set_num_threads(1);
  SweepRunner serial_runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult serial = serial_runner.run(small_sweep());

  set_num_threads(4);
  SweepRunner parallel_runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult parallel = parallel_runner.run(small_sweep());
  set_num_threads(0);  // restore the environment default

  ASSERT_EQ(serial.rows.size(), parallel.rows.size());
  for (std::size_t i = 0; i < serial.rows.size(); ++i) {
    const AttackReport& a = serial.rows[i].report;
    const AttackReport& b = parallel.rows[i].report;
    EXPECT_EQ(a.method, b.method) << "row " << i;
    EXPECT_EQ(a.delta, b.delta) << "row " << i;  // bitwise: Tensor== compares floats exactly
    EXPECT_EQ(a.l0, b.l0) << "row " << i;
    EXPECT_EQ(a.l2, b.l2) << "row " << i;
    EXPECT_EQ(a.targets_hit, b.targets_hit) << "row " << i;
    EXPECT_EQ(a.maintained, b.maintained) << "row " << i;
    EXPECT_EQ(a.test_accuracy, b.test_accuracy) << "row " << i;
    EXPECT_EQ(a.attempts, b.attempts) << "row " << i;
  }
}

TEST(SweepRunner, IdenticalRowsAcrossAllComputeBackendsAndThreadCounts) {
  // The acceptance contract of the backend seam: reference, blocked and
  // packed must produce identical attack-success rows — same δ (bitwise),
  // same hits/kept counts, same accuracy — in the determinism sweep, for
  // any FSA_NUM_THREADS. The kernels are built to be
  // accumulation-order-identical, so this holds exactly, not just within
  // tolerance.
  auto& f = fixture();
  // RAII restore: a failing ASSERT mid-loop must not leak a non-default
  // backend/thread count into the rest of the suite.
  struct Restore {
    std::string saved = backend::active_name();
    ~Restore() {
      backend::set_backend(saved);
      set_num_threads(0);
    }
  } restore;
  backend::set_backend("reference");
  set_num_threads(1);
  SweepRunner oracle_runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult oracle = oracle_runner.run(small_sweep());
  EXPECT_EQ(oracle.backend, "reference");

  for (const char* name : {"reference", "blocked", "packed"}) {
    for (int threads : {1, 4}) {
      backend::set_backend(name);
      set_num_threads(threads);
      SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
      const SweepResult result = runner.run(small_sweep());
      EXPECT_EQ(result.backend, name);
      ASSERT_EQ(result.rows.size(), oracle.rows.size());
      for (std::size_t i = 0; i < result.rows.size(); ++i) {
        const AttackReport& a = oracle.rows[i].report;
        const AttackReport& b = result.rows[i].report;
        const std::string where =
            std::string(name) + " @ " + std::to_string(threads) + " threads, row " +
            std::to_string(i);
        EXPECT_EQ(b.backend, name) << where;
        EXPECT_EQ(a.method, b.method) << where;
        EXPECT_EQ(a.delta, b.delta) << where;  // bitwise
        EXPECT_EQ(a.l0, b.l0) << where;
        EXPECT_EQ(a.l2, b.l2) << where;
        EXPECT_EQ(a.targets_hit, b.targets_hit) << where;
        EXPECT_EQ(a.maintained, b.maintained) << where;
        EXPECT_EQ(a.all_targets_hit, b.all_targets_hit) << where;
        EXPECT_EQ(a.all_maintained, b.all_maintained) << where;
        EXPECT_EQ(a.test_accuracy, b.test_accuracy) << where;
      }
    }
  }
}

TEST(SweepRunner, JsonReportCarriesAllRows) {
  auto& f = fixture();
  SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  Sweep sweep;
  sweep.layers({"fc2"}).sr_pairs({{1, 6}}).seeds({5}).measure_accuracy(false);
  const SweepResult result = runner.run(sweep);
  const eval::Json j = eval::Json::parse(result.to_json().dump(2));
  EXPECT_EQ(j.get_string("model", ""), "blobs");
  EXPECT_EQ(j.get_string("backend", ""), backend::active_name());
  ASSERT_EQ(j.at("rows").size(), 1u);
  const AttackReport back = AttackReport::from_json(j.at("rows").at(0));
  EXPECT_EQ(back.method, "fsa-l0");
  // Per-row attribution: the active backend's name, refined by dispatching
  // backends ("auto" rows record e.g. "auto(blocked)").
  EXPECT_EQ(back.backend.rfind(backend::active_name(), 0), 0u) << back.backend;
  EXPECT_EQ(back.l0, result.rows[0].report.l0);
  EXPECT_EQ(back.seed, 5u);
}

TEST(SweepRunner, CompiledSweepJsonByteIdenticalToUncompiled) {
  // The forward-pass compiler's acceptance contract: FSA_COMPILE=on rows
  // are BYTE-identical to FSA_COMPILE=off rows — same δ floats, same
  // accuracies, same counts — once the path-attribution fields
  // ("compiled"/"fused_nodes") and wall time ("seconds") are scrubbed.
  // Everything the paper reads from a sweep must not depend on the path.
  struct ScrubKeys {
    static eval::Json apply(const eval::Json& j) {
      if (j.type() == eval::Json::Type::kObject) {
        eval::Json out = eval::Json::object();
        for (const auto& [key, value] : j.members()) {
          if (key == "seconds" || key == "compiled" || key == "fused_nodes") continue;
          out.set(key, apply(value));
        }
        return out;
      }
      if (j.type() == eval::Json::Type::kArray) {
        eval::Json out = eval::Json::array();
        for (const auto& item : j.items()) out.push_back(apply(item));
        return out;
      }
      return j;
    }
  };
  struct Restore {
    bool saved = compile::enabled();
    ~Restore() { compile::set_enabled(saved); }
  } restore;

  auto& f = fixture();
  compile::set_enabled(false);
  SweepRunner off_runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult off = off_runner.run(small_sweep());
  EXPECT_FALSE(off.compiled);
  EXPECT_EQ(off.fused_nodes, 0);

  compile::set_enabled(true);
  SweepRunner on_runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult on = on_runner.run(small_sweep());
  EXPECT_TRUE(on.compiled);
  EXPECT_GT(on.fused_nodes, 0);  // blob net: fc1+relu, fc2
  for (const auto& row : on.rows) EXPECT_TRUE(row.report.compiled);
  for (const auto& row : off.rows) EXPECT_FALSE(row.report.compiled);

  EXPECT_EQ(ScrubKeys::apply(on.to_json()).dump(2), ScrubKeys::apply(off.to_json()).dump(2));
}

TEST(SweepRunner, EmptySweepThrows) {
  auto& f = fixture();
  SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  EXPECT_THROW(runner.run(std::vector<SweepSpec>{}), std::invalid_argument);
}

TEST(SweepRunner, UnknownMethodThrowsBeforeSolving) {
  auto& f = fixture();
  SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  SweepSpec spec;
  spec.method = "no-such-method";
  spec.layers = {"fc2"};
  spec.S = 1;
  spec.R = 4;
  EXPECT_THROW(runner.run({spec}), std::invalid_argument);
}

// ---- the campaign stage -------------------------------------------------------

Sweep campaign_sweep(int shards) {
  CampaignConfig cfg;
  cfg.injectors = {"rowhammer", "laser"};
  cfg.shards = shards;
  Sweep sweep;
  sweep.methods({"fsa-l0"})
      .layers({"fc2"})
      .sr_pairs({{1, 8}})
      .seeds({3})
      .measure_accuracy(false)
      .with_campaign(cfg);
  return sweep;
}

TEST(SweepCampaign, RowsCarryOneReportPerInjector) {
  auto& f = fixture();
  SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult result = runner.run(campaign_sweep(2));
  ASSERT_EQ(result.rows.size(), 1u);
  const AttackReport& rep = result.rows[0].report;
  ASSERT_TRUE(rep.campaign.has_value());
  EXPECT_EQ(rep.campaign->shards, 2);
  EXPECT_EQ(rep.campaign->format, "float32");
  // float32 realization is lossless, but plan_bit_flips drops entries whose
  // modification is below float32 resolution at θ0.
  EXPECT_LE(rep.campaign->params_modified, rep.l0);
  EXPECT_GT(rep.campaign->params_modified, 0);
  ASSERT_EQ(rep.campaign->reports.size(), 2u);
  EXPECT_EQ(rep.campaign->reports[0].injector, "rowhammer");
  EXPECT_EQ(rep.campaign->reports[1].injector, "laser");
  EXPECT_EQ(rep.campaign->report("laser").bits_requested, rep.campaign->total_bit_flips);
  EXPECT_GT(rep.campaign->report("laser").seconds, 0.0);
  // Campaign columns show up in the table alongside the attack columns.
  const std::string csv = result.table("t").csv();
  EXPECT_NE(csv.find("rowhammer h"), std::string::npos);
  EXPECT_NE(csv.find("laser att/mass"), std::string::npos);
}

TEST(SweepCampaign, TotalsAreShardCountInvariant) {
  // The CLI acceptance contract: `sweep --with-campaign --shards 8` rows
  // are bitwise identical to `--shards 1` (modulo the shards field itself).
  auto& f = fixture();
  SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult one = runner.run(campaign_sweep(1));
  const SweepResult eight = runner.run(campaign_sweep(8));
  ASSERT_EQ(one.rows.size(), eight.rows.size());
  for (std::size_t i = 0; i < one.rows.size(); ++i) {
    const CampaignSummary& a = *one.rows[i].report.campaign;
    const CampaignSummary& b = *eight.rows[i].report.campaign;
    EXPECT_EQ(a.total_bit_flips, b.total_bit_flips);
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (std::size_t c = 0; c < a.reports.size(); ++c) {
      EXPECT_EQ(a.reports[c].injector, b.reports[c].injector);
      EXPECT_EQ(a.reports[c].success, b.reports[c].success);
      EXPECT_EQ(a.reports[c].attempts, b.reports[c].attempts);
      EXPECT_EQ(a.reports[c].massages, b.reports[c].massages);
      EXPECT_EQ(a.reports[c].rows_touched, b.reports[c].rows_touched);
      EXPECT_EQ(a.reports[c].seconds, b.reports[c].seconds);  // bitwise
    }
  }
}

TEST(SweepCampaign, ReportJsonRoundTripsCampaign) {
  auto& f = fixture();
  SweepRunner runner(f.model, f.cache_dir, /*verbose=*/false);
  const SweepResult result = runner.run(campaign_sweep(4));
  const eval::Json j = eval::Json::parse(result.to_json().dump(2));
  const AttackReport back = AttackReport::from_json(j.at("rows").at(0));
  ASSERT_TRUE(back.campaign.has_value());
  const CampaignSummary& orig = *result.rows[0].report.campaign;
  EXPECT_EQ(back.campaign->shards, orig.shards);
  EXPECT_EQ(back.campaign->total_bit_flips, orig.total_bit_flips);
  ASSERT_EQ(back.campaign->reports.size(), orig.reports.size());
  for (std::size_t c = 0; c < orig.reports.size(); ++c) {
    EXPECT_EQ(back.campaign->reports[c].injector, orig.reports[c].injector);
    EXPECT_EQ(back.campaign->reports[c].attempts, orig.reports[c].attempts);
    EXPECT_EQ(back.campaign->reports[c].seconds, orig.reports[c].seconds);
  }
}

TEST(SweepCampaign, UnknownInjectorThrowsAtConfigTime) {
  CampaignConfig cfg;
  cfg.injectors = {"warp-core"};
  Sweep sweep;
  EXPECT_THROW(sweep.with_campaign(cfg), std::invalid_argument);
  CampaignConfig zero;
  zero.shards = 0;
  EXPECT_THROW(sweep.with_campaign(zero), std::invalid_argument);
}

}  // namespace
}  // namespace fsa::engine
