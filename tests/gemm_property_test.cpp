// gemm_property_test.cpp — algebraic identities of the GEMM kernels over a
// shape sweep. These hold exactly in exact arithmetic; in float32 we check
// them to a norm-scaled tolerance. They pin down the kernel family against
// each other (matmul / matmul_tn / matmul_nt share no code path).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace fsa::ops {
namespace {

/// Textbook i-j-p triple loop, double accumulator — the reference the
/// blocked/tiled/parallel kernels are checked against.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c(Shape({m, n}));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a.at2(i, p)) * b.at2(p, j);
      c.at2(i, j) = static_cast<float>(acc);
    }
  return c;
}

/// Restores the pool to the environment default when a test body returns.
struct ThreadGuard {
  ~ThreadGuard() { set_num_threads(0); }
};

struct GemmCase {
  std::int64_t m, k, n;
  std::uint64_t seed;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {
 protected:
  Tensor A, B, C;

  void SetUp() override {
    const auto p = GetParam();
    Rng rng(p.seed);
    A = Tensor::randn(Shape({p.m, p.k}), rng);
    B = Tensor::randn(Shape({p.k, p.n}), rng);
    C = Tensor::randn(Shape({p.k, p.n}), rng);
  }

  static double rel_err(const Tensor& got, const Tensor& want) {
    double num = 0.0, den = 1e-12;
    for (std::size_t i = 0; i < got.size(); ++i) {
      num += std::fabs(static_cast<double>(got[i]) - want[i]);
      den += std::fabs(want[i]);
    }
    return num / den;
  }
};

TEST_P(GemmSweep, RightDistributivity) {
  // A(B + C) = AB + AC.
  const Tensor lhs = matmul(A, add(B, C));
  const Tensor rhs = add(matmul(A, B), matmul(A, C));
  EXPECT_LT(rel_err(lhs, rhs), 1e-4);
}

TEST_P(GemmSweep, ScalarCommutes) {
  // (sA)B = s(AB).
  const Tensor lhs = matmul(scale(A, 2.5f), B);
  const Tensor rhs = scale(matmul(A, B), 2.5f);
  EXPECT_LT(rel_err(lhs, rhs), 1e-4);
}

TEST_P(GemmSweep, TnAgreesWithExplicitTranspose) {
  const Tensor at = transpose2d(A);  // [k, m]
  const Tensor lhs = matmul_tn(at, B);  // (atᵀ)B = AB
  const Tensor rhs = matmul(A, B);
  EXPECT_LT(rel_err(lhs, rhs), 1e-4);
}

TEST_P(GemmSweep, NtAgreesWithExplicitTranspose) {
  const Tensor bt = transpose2d(B);  // [n, k]
  const Tensor lhs = matmul_nt(A, bt);  // A(btᵀ) = AB
  const Tensor rhs = matmul(A, B);
  EXPECT_LT(rel_err(lhs, rhs), 1e-4);
}

TEST_P(GemmSweep, TraceIdentity) {
  // ⟨AB, D⟩ = ⟨A, DBᵀ⟩ for any D of the output shape — the adjoint identity
  // the Dense backward pass is built on.
  const auto p = GetParam();
  Rng rng(p.seed + 99);
  const Tensor D = Tensor::randn(Shape({p.m, p.n}), rng);
  const double lhs = dot(matmul(A, B), D);
  const double rhs = dot(A, matmul_nt(D, B));
  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::fabs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{1, 1, 1, 1}, GemmCase{1, 64, 1, 2}, GemmCase{7, 3, 5, 3},
                      GemmCase{16, 16, 16, 4}, GemmCase{33, 17, 9, 5}, GemmCase{2, 200, 10, 6},
                      GemmCase{64, 9, 32, 7}, GemmCase{100, 1024, 3, 8}),
    [](const ::testing::TestParamInfo<GemmCase>& info) {
      const auto& p = info.param;
      return "m" + std::to_string(p.m) + "_k" + std::to_string(p.k) + "_n" +
             std::to_string(p.n);
    });

// ---- parity of the blocked/parallel backend against the naive reference ----

class GemmParity : public ::testing::TestWithParam<GemmCase> {
 protected:
  static double rel_err(const Tensor& got, const Tensor& want) {
    double num = 0.0, den = 1e-12;
    for (std::size_t i = 0; i < got.size(); ++i) {
      num += std::fabs(static_cast<double>(got[i]) - want[i]);
      den += std::fabs(want[i]);
    }
    return num / den;
  }
};

TEST_P(GemmParity, AllVariantsMatchNaive) {
  const auto p = GetParam();
  Rng rng(p.seed);
  const Tensor A = Tensor::randn(Shape({p.m, p.k}), rng);
  const Tensor B = Tensor::randn(Shape({p.k, p.n}), rng);
  const Tensor want = naive_matmul(A, B);
  EXPECT_LT(rel_err(matmul(A, B), want), 1e-4);
  EXPECT_LT(rel_err(matmul_tn(transpose2d(A), B), want), 1e-4);
  EXPECT_LT(rel_err(matmul_nt(A, transpose2d(B)), want), 1e-4);
}

TEST_P(GemmParity, SparseDeltaRowsMatchNaive) {
  // δ-like inputs: most rows all-zero, a few rows with a handful of spikes.
  // Exercises the sparse-row fast path and the mixed sparse/dense tiles.
  const auto p = GetParam();
  Rng rng(p.seed + 1000);
  Tensor A = Tensor::zeros(Shape({p.m, p.k}));
  for (std::int64_t i = 0; i < p.m; i += 3)
    for (std::int64_t t = 0; t < std::max<std::int64_t>(p.k / 16, 1); ++t)
      A.at2(i, static_cast<std::int64_t>(rng.uniform_int(static_cast<std::uint64_t>(p.k)))) =
          static_cast<float>(rng.normal());
  const Tensor B = Tensor::randn(Shape({p.k, p.n}), rng);
  EXPECT_LT(rel_err(matmul(A, B), naive_matmul(A, B)), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmParity,
    ::testing::Values(
        // degenerate and single-row shapes
        GemmCase{1, 1, 1, 11}, GemmCase{1, 300, 7, 12}, GemmCase{5, 1, 5, 13},
        // odd shapes that straddle the mr=4 row tile
        GemmCase{3, 17, 9, 14}, GemmCase{33, 17, 9, 15}, GemmCase{66, 129, 35, 16},
        // shapes that cross the kc=256 and nc=1024 panel boundaries
        GemmCase{9, 520, 33, 17}, GemmCase{18, 70, 1040, 18}, GemmCase{70, 300, 1030, 19},
        // paper head shapes
        GemmCase{1000, 200, 10, 20}, GemmCase{200, 1000, 10, 21}),
    [](const ::testing::TestParamInfo<GemmCase>& info) {
      const auto& p = info.param;
      return "m" + std::to_string(p.m) + "_k" + std::to_string(p.k) + "_n" +
             std::to_string(p.n);
    });

TEST(GemmEdge, KZeroIsEmptyContraction) {
  const Tensor A(Shape({3, 0}));
  const Tensor B(Shape({0, 4}));
  const Tensor C = matmul(A, B);
  ASSERT_EQ(C.dim(0), 3);
  ASSERT_EQ(C.dim(1), 4);
  for (float v : C.span()) EXPECT_EQ(v, 0.0f);
  const Tensor Cnt = matmul_nt(A, Tensor(Shape({4, 0})));
  for (float v : Cnt.span()) EXPECT_EQ(v, 0.0f);
}

// ---- determinism: 1 thread and N threads must agree bit-for-bit ------------

TEST(GemmDeterminism, ThreadCountInvariant) {
  ThreadGuard guard;
  const GemmCase cases[] = {{1, 1, 1, 31},      {7, 3, 5, 32},      {33, 17, 9, 33},
                            {66, 129, 35, 34},  {9, 520, 33, 35},   {70, 300, 1030, 36},
                            {1000, 200, 10, 37}};
  for (const auto& p : cases) {
    Rng rng(p.seed);
    const Tensor A = Tensor::randn(Shape({p.m, p.k}), rng);
    const Tensor B = Tensor::randn(Shape({p.k, p.n}), rng);
    const Tensor At = transpose2d(A);
    const Tensor Bt = transpose2d(B);
    set_num_threads(1);
    const Tensor nn1 = matmul(A, B);
    const Tensor tn1 = matmul_tn(At, B);
    const Tensor nt1 = matmul_nt(A, Bt);
    for (int threads : {2, 4, 7}) {
      set_num_threads(threads);
      EXPECT_TRUE(matmul(A, B) == nn1) << "NN differs at " << threads << " threads";
      EXPECT_TRUE(matmul_tn(At, B) == tn1) << "TN differs at " << threads << " threads";
      EXPECT_TRUE(matmul_nt(A, Bt) == nt1) << "NT differs at " << threads << " threads";
    }
  }
}

TEST(GemmDeterminism, RowParallelOpsThreadCountInvariant) {
  ThreadGuard guard;
  Rng rng(99);
  const Tensor logits = Tensor::randn(Shape({513, 10}), rng);
  std::vector<std::int64_t> labels(513);
  for (auto& l : labels) l = static_cast<std::int64_t>(rng.uniform_int(10));
  set_num_threads(1);
  const Tensor sm1 = softmax_rows(logits);
  const Tensor ce1 = cross_entropy_grad(logits, labels);
  set_num_threads(4);
  EXPECT_TRUE(softmax_rows(logits) == sm1);
  EXPECT_TRUE(cross_entropy_grad(logits, labels) == ce1);
}

}  // namespace
}  // namespace fsa::ops
