// gemm_property_test.cpp — algebraic identities of the GEMM kernels over a
// shape sweep. These hold exactly in exact arithmetic; in float32 we check
// them to a norm-scaled tolerance. They pin down the kernel family against
// each other (matmul / matmul_tn / matmul_nt share no code path).
#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace fsa::ops {
namespace {

struct GemmCase {
  std::int64_t m, k, n;
  std::uint64_t seed;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {
 protected:
  Tensor A, B, C;

  void SetUp() override {
    const auto p = GetParam();
    Rng rng(p.seed);
    A = Tensor::randn(Shape({p.m, p.k}), rng);
    B = Tensor::randn(Shape({p.k, p.n}), rng);
    C = Tensor::randn(Shape({p.k, p.n}), rng);
  }

  static double rel_err(const Tensor& got, const Tensor& want) {
    double num = 0.0, den = 1e-12;
    for (std::size_t i = 0; i < got.size(); ++i) {
      num += std::fabs(static_cast<double>(got[i]) - want[i]);
      den += std::fabs(want[i]);
    }
    return num / den;
  }
};

TEST_P(GemmSweep, RightDistributivity) {
  // A(B + C) = AB + AC.
  const Tensor lhs = matmul(A, add(B, C));
  const Tensor rhs = add(matmul(A, B), matmul(A, C));
  EXPECT_LT(rel_err(lhs, rhs), 1e-4);
}

TEST_P(GemmSweep, ScalarCommutes) {
  // (sA)B = s(AB).
  const Tensor lhs = matmul(scale(A, 2.5f), B);
  const Tensor rhs = scale(matmul(A, B), 2.5f);
  EXPECT_LT(rel_err(lhs, rhs), 1e-4);
}

TEST_P(GemmSweep, TnAgreesWithExplicitTranspose) {
  const Tensor at = transpose2d(A);  // [k, m]
  const Tensor lhs = matmul_tn(at, B);  // (atᵀ)B = AB
  const Tensor rhs = matmul(A, B);
  EXPECT_LT(rel_err(lhs, rhs), 1e-4);
}

TEST_P(GemmSweep, NtAgreesWithExplicitTranspose) {
  const Tensor bt = transpose2d(B);  // [n, k]
  const Tensor lhs = matmul_nt(A, bt);  // A(btᵀ) = AB
  const Tensor rhs = matmul(A, B);
  EXPECT_LT(rel_err(lhs, rhs), 1e-4);
}

TEST_P(GemmSweep, TraceIdentity) {
  // ⟨AB, D⟩ = ⟨A, DBᵀ⟩ for any D of the output shape — the adjoint identity
  // the Dense backward pass is built on.
  const auto p = GetParam();
  Rng rng(p.seed + 99);
  const Tensor D = Tensor::randn(Shape({p.m, p.n}), rng);
  const double lhs = dot(matmul(A, B), D);
  const double rhs = dot(A, matmul_nt(D, B));
  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::fabs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSweep,
    ::testing::Values(GemmCase{1, 1, 1, 1}, GemmCase{1, 64, 1, 2}, GemmCase{7, 3, 5, 3},
                      GemmCase{16, 16, 16, 4}, GemmCase{33, 17, 9, 5}, GemmCase{2, 200, 10, 6},
                      GemmCase{64, 9, 32, 7}, GemmCase{100, 1024, 3, 8}),
    [](const ::testing::TestParamInfo<GemmCase>& info) {
      const auto& p = info.param;
      return "m" + std::to_string(p.m) + "_k" + std::to_string(p.k) + "_n" +
             std::to_string(p.n);
    });

}  // namespace
}  // namespace fsa::ops
