// dataset_property_test.cpp — parameterized invariants of the synthetic
// data generators across seeds and sizes: these must hold for EVERY seed
// the benches might use, not just the defaults.
#include <gtest/gtest.h>

#include <set>

#include "data/synth_digits.h"
#include "data/synth_objects.h"
#include "tensor/ops.h"

namespace fsa::data {
namespace {

struct GenCase {
  std::uint64_t seed;
  std::int64_t count;
};

class DigitsSweep : public ::testing::TestWithParam<GenCase> {
 protected:
  Dataset make() const {
    SynthDigitsConfig cfg;
    cfg.seed = GetParam().seed;
    cfg.count = GetParam().count;
    return make_synth_digits(cfg);
  }
};

TEST_P(DigitsSweep, ShapeAndLabelInvariants) {
  const Dataset ds = make();
  EXPECT_EQ(ds.images().shape(), Shape({GetParam().count, 1, 28, 28}));
  EXPECT_EQ(ds.num_classes(), 10);
  for (auto l : ds.labels()) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 10);
  }
}

TEST_P(DigitsSweep, PixelRangeAndEnergy) {
  const Dataset ds = make();
  for (float v : ds.images().span()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  // Mean brightness must sit in a sane band: not black, not washed out.
  const double mean = ops::mean(ds.images());
  EXPECT_GT(mean, 0.02);
  EXPECT_LT(mean, 0.5);
}

TEST_P(DigitsSweep, DeterministicAndSeedSensitive) {
  const Dataset a = make();
  const Dataset b = make();
  EXPECT_EQ(a.images(), b.images());
  SynthDigitsConfig other;
  other.seed = GetParam().seed + 1;
  other.count = GetParam().count;
  EXPECT_NE(make_synth_digits(other).images(), a.images());
}

TEST_P(DigitsSweep, RoughClassBalance) {
  const Dataset ds = make();
  if (ds.size() < 200) GTEST_SKIP() << "balance only meaningful for larger samples";
  std::array<std::int64_t, 10> counts{};
  for (auto l : ds.labels()) ++counts[static_cast<std::size_t>(l)];
  for (auto c : counts) {
    EXPECT_GT(c, ds.size() / 25);  // no class starved
    EXPECT_LT(c, ds.size() / 4);   // no class dominant
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DigitsSweep,
                         ::testing::Values(GenCase{1, 64}, GenCase{101, 256}, GenCase{102, 256},
                                           GenCase{103, 400}, GenCase{999, 32}),
                         [](const ::testing::TestParamInfo<GenCase>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_n" +
                                  std::to_string(info.param.count);
                         });

class ObjectsSweep : public ::testing::TestWithParam<GenCase> {
 protected:
  Dataset make() const {
    SynthObjectsConfig cfg;
    cfg.seed = GetParam().seed;
    cfg.count = GetParam().count;
    return make_synth_objects(cfg);
  }
};

TEST_P(ObjectsSweep, ShapeAndLabelInvariants) {
  const Dataset ds = make();
  EXPECT_EQ(ds.images().shape(), Shape({GetParam().count, 3, 32, 32}));
  EXPECT_EQ(ds.num_classes(), 10);
  for (auto l : ds.labels()) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 10);
  }
}

TEST_P(ObjectsSweep, PixelRangeAndColorVariance) {
  const Dataset ds = make();
  for (float v : ds.images().span()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 1.0f);
  }
  // The generator must actually produce colorful, varied images: the
  // per-dataset pixel variance cannot collapse.
  const double mean = ops::mean(ds.images());
  double var = 0.0;
  for (float v : ds.images().span()) var += (v - mean) * (v - mean);
  var /= static_cast<double>(ds.images().numel());
  EXPECT_GT(var, 0.01);
}

TEST_P(ObjectsSweep, DeterministicAndSeedSensitive) {
  const Dataset a = make();
  const Dataset b = make();
  EXPECT_EQ(a.images(), b.images());
  SynthObjectsConfig other;
  other.seed = GetParam().seed + 1;
  other.count = GetParam().count;
  EXPECT_NE(make_synth_objects(other).images(), a.images());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectsSweep,
                         ::testing::Values(GenCase{2, 48}, GenCase{201, 128}, GenCase{202, 128},
                                           GenCase{203, 200}, GenCase{888, 32}),
                         [](const ::testing::TestParamInfo<GenCase>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_n" +
                                  std::to_string(info.param.count);
                         });

}  // namespace
}  // namespace fsa::data
