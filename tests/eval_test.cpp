// eval_test.cpp — table formatting helpers and the JSON parser's
// untrusted-input hardening (the serve daemon feeds it attacker bytes).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "eval/json.h"
#include "eval/stopwatch.h"
#include "eval/table.h"

namespace fsa::eval {
namespace {

// ---- Json parse limits (adversarial input) -----------------------------------

TEST(JsonLimits, DeepNestingIsRejectedNotACrash) {
  // 100k unclosed arrays: without the depth bound this recurses once per
  // bracket and overflows the stack. The default limit must reject it
  // with an exception long before that.
  const std::string bomb(100000, '[');
  EXPECT_THROW((void)Json::parse(bomb), std::runtime_error);

  // Same shape as objects, and as a properly-closed document.
  std::string nested;
  for (int i = 0; i < 5000; ++i) nested += "{\"a\":";
  nested += "1";
  for (int i = 0; i < 5000; ++i) nested += "}";
  EXPECT_THROW((void)Json::parse(nested), std::runtime_error);
}

TEST(JsonLimits, MaxDepthBoundaryIsExact) {
  const auto nested_array = [](int levels) {
    return std::string(static_cast<std::size_t>(levels), '[') + "1" +
           std::string(static_cast<std::size_t>(levels), ']');
  };
  Json::ParseLimits limits;
  limits.max_depth = 4;
  EXPECT_NO_THROW((void)Json::parse(nested_array(4), limits));
  EXPECT_THROW((void)Json::parse(nested_array(5), limits), std::runtime_error);
  // Scalars sit at depth 0 and always parse.
  EXPECT_EQ(Json::parse("42", Json::ParseLimits{0, 0}).as_int(), 42);
}

TEST(JsonLimits, InputSizeCapRejectsBeforeParsing) {
  Json::ParseLimits limits;
  limits.max_bytes = 16;
  EXPECT_EQ(Json::parse("{\"a\": 1}", limits).get_int("a", 0), 1);
  try {
    (void)Json::parse("[1, 2, 3, 4, 5, 6, 7, 8]", limits);
    FAIL() << "expected the size cap to reject";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("16-byte limit"), std::string::npos);
  }
  // 0 = unlimited (the default for trusted internal artifacts).
  limits.max_bytes = 0;
  EXPECT_NO_THROW((void)Json::parse("[1, 2, 3, 4, 5, 6, 7, 8]", limits));
}

TEST(JsonLimits, TrailingGarbageIsRejected) {
  EXPECT_THROW((void)Json::parse("{} {}"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1] x"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("1 2"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("null,"), std::runtime_error);
  EXPECT_NO_THROW((void)Json::parse(" {\"a\": [1]} \n"));  // whitespace is fine
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(0.987654, 3), "0.988");
  EXPECT_EQ(fmt(1.0, 1), "1.0");
  EXPECT_EQ(fmt(-2.5, 0), "-2");
}

TEST(Pct, OneDecimalPercent) {
  EXPECT_EQ(pct(0.995), "99.5%");
  EXPECT_EQ(pct(0.0), "0.0%");
  EXPECT_EQ(pct(1.0), "100.0%");
}

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.header({"name", "value"}).row({"alpha", "1"}).row({"beta", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| beta "), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  Table t("ragged");
  t.header({"a", "b", "c"}).row({"only-one"});
  EXPECT_NO_THROW(t.str());
}

TEST(Table, CsvRoundTrip) {
  Table t("csv");
  t.header({"s", "r", "l0"}).row({"1", "10", "42"});
  EXPECT_EQ(t.csv(), "s,r,l0\n1,10,42\n");
}

TEST(Table, WriteCsvCreatesFile) {
  Table t("file");
  t.header({"x"}).row({"7"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "fsa_eval_table.csv").string();
  t.write_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
  std::filesystem::remove(path);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double a = sw.seconds();
  EXPECT_GE(a, 0.0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_LT(sw.seconds(), 5.0);
}

}  // namespace
}  // namespace fsa::eval
