// eval_test.cpp — table formatting helpers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "eval/stopwatch.h"
#include "eval/table.h"

namespace fsa::eval {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(0.987654, 3), "0.988");
  EXPECT_EQ(fmt(1.0, 1), "1.0");
  EXPECT_EQ(fmt(-2.5, 0), "-2");
}

TEST(Pct, OneDecimalPercent) {
  EXPECT_EQ(pct(0.995), "99.5%");
  EXPECT_EQ(pct(0.0), "0.0%");
  EXPECT_EQ(pct(1.0), "100.0%");
}

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.header({"name", "value"}).row({"alpha", "1"}).row({"beta", "22"});
  const std::string s = t.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("| alpha"), std::string::npos);
  EXPECT_NE(s.find("| beta "), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  Table t("ragged");
  t.header({"a", "b", "c"}).row({"only-one"});
  EXPECT_NO_THROW(t.str());
}

TEST(Table, CsvRoundTrip) {
  Table t("csv");
  t.header({"s", "r", "l0"}).row({"1", "10", "42"});
  EXPECT_EQ(t.csv(), "s,r,l0\n1,10,42\n");
}

TEST(Table, WriteCsvCreatesFile) {
  Table t("file");
  t.header({"x"}).row({"7"});
  const std::string path =
      (std::filesystem::temp_directory_path() / "fsa_eval_table.csv").string();
  t.write_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "x");
  std::filesystem::remove(path);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double a = sw.seconds();
  EXPECT_GE(a, 0.0);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_LT(sw.seconds(), 5.0);
}

}  // namespace
}  // namespace fsa::eval
