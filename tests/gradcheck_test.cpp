// gradcheck_test.cpp — finite-difference verification of every layer's
// backward pass, both w.r.t. inputs and w.r.t. parameters. The attack's
// δ-step is only as correct as these gradients.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace fsa::nn {
namespace {

/// Scalar loss used for gradient checking: weighted sum of outputs, with
/// fixed pseudo-random weights so every output coordinate matters.
double weighted_sum(const Tensor& y, const Tensor& w) { return ops::dot(y, w); }

/// Analytic input-gradient via backward(), compared against central
/// differences of the scalarized forward pass.
void check_input_grad(Layer& layer, const Tensor& x0, double tol = 2e-2) {
  Rng wrng(1234);
  const Shape out_shape = layer.output_shape(x0.shape());
  const Tensor w = Tensor::randn(out_shape, wrng);

  layer.zero_grad();
  layer.forward(x0, true);
  const Tensor gx = layer.backward(w);

  const double eps = 1e-2;  // float32 — keep the step large enough
  for (std::int64_t i = 0; i < x0.numel(); ++i) {
    Tensor plus = x0, minus = x0;
    plus[static_cast<std::size_t>(i)] += static_cast<float>(eps);
    minus[static_cast<std::size_t>(i)] -= static_cast<float>(eps);
    const double fd = (weighted_sum(layer.forward(plus, false), w) -
                       weighted_sum(layer.forward(minus, false), w)) /
                      (2 * eps);
    EXPECT_NEAR(gx[static_cast<std::size_t>(i)], fd, tol)
        << layer.name() << " input grad mismatch at " << i;
  }
}

/// Analytic parameter-gradient via backward(), against central differences.
void check_param_grad(Layer& layer, const Tensor& x0, double tol = 2e-2) {
  Rng wrng(4321);
  const Shape out_shape = layer.output_shape(x0.shape());
  const Tensor w = Tensor::randn(out_shape, wrng);

  layer.zero_grad();
  layer.forward(x0, true);
  layer.backward(w);

  for (auto* p : layer.params()) {
    const Tensor analytic = p->grad();
    for (std::int64_t i = 0; i < p->numel(); ++i) {
      const float orig = p->value()[static_cast<std::size_t>(i)];
      const double eps = 1e-2;
      p->value()[static_cast<std::size_t>(i)] = orig + static_cast<float>(eps);
      const double up = weighted_sum(layer.forward(x0, false), w);
      p->value()[static_cast<std::size_t>(i)] = orig - static_cast<float>(eps);
      const double dn = weighted_sum(layer.forward(x0, false), w);
      p->value()[static_cast<std::size_t>(i)] = orig;
      EXPECT_NEAR(analytic[static_cast<std::size_t>(i)], (up - dn) / (2 * eps), tol)
          << p->name() << " param grad mismatch at " << i;
    }
  }
}

TEST(GradCheck, DenseInput) {
  Rng rng(1);
  Dense d("fc", 6, 4, rng);
  Rng xr(2);
  check_input_grad(d, Tensor::randn(Shape({3, 6}), xr));
}

TEST(GradCheck, DenseParams) {
  Rng rng(3);
  Dense d("fc", 5, 3, rng);
  Rng xr(4);
  check_param_grad(d, Tensor::randn(Shape({2, 5}), xr));
}

TEST(GradCheck, Conv2DInput) {
  Rng rng(5);
  Conv2D c("conv", 2, 3, 3, rng);
  Rng xr(6);
  check_input_grad(c, Tensor::randn(Shape({2, 2, 6, 6}), xr));
}

TEST(GradCheck, Conv2DParams) {
  Rng rng(7);
  Conv2D c("conv", 1, 2, 3, rng);
  Rng xr(8);
  check_param_grad(c, Tensor::randn(Shape({2, 1, 5, 5}), xr));
}

TEST(GradCheck, Conv2DStridedPaddedInput) {
  Rng rng(9);
  Conv2D c("conv", 1, 2, 3, rng, /*stride=*/2, /*padding=*/1);
  Rng xr(10);
  check_input_grad(c, Tensor::randn(Shape({1, 1, 7, 7}), xr));
}

TEST(GradCheck, ReLUInput) {
  ReLU r("relu");
  Rng xr(11);
  // Keep values away from the kink at 0 where the FD estimate is invalid.
  Tensor x = Tensor::randn(Shape({2, 8}), xr);
  for (auto& v : x.span())
    if (std::fabs(v) < 0.1f) v = 0.5f;
  check_input_grad(r, x);
}

TEST(GradCheck, MaxPoolInput) {
  MaxPool2D p("pool", 2);
  Rng xr(12);
  // Separate values so the argmax is stable under the FD perturbation.
  Tensor x = Tensor::randn(Shape({1, 2, 4, 4}), xr);
  x *= 10.0f;
  check_input_grad(p, x, /*tol=*/5e-2);
}

TEST(GradCheck, FlattenInput) {
  Flatten f("flatten");
  Rng xr(13);
  check_input_grad(f, Tensor::randn(Shape({2, 2, 3, 3}), xr));
}

TEST(GradCheck, SequentialEndToEndParamGrads) {
  // Small conv→pool→dense stack; verify parameter gradients through the
  // whole chain (the exact path the attack's δ-step uses on the head).
  Rng rng(14);
  Sequential net;
  net.add(std::make_unique<Conv2D>("conv", 1, 2, 3, rng));
  net.add(std::make_unique<ReLU>("relu"));
  net.add(std::make_unique<MaxPool2D>("pool", 2));
  net.add(std::make_unique<Flatten>("flatten"));
  net.add(std::make_unique<Dense>("fc", 2 * 3 * 3, 4, rng));

  Rng xr(15);
  Tensor x = Tensor::randn(Shape({2, 1, 8, 8}), xr);
  x *= 3.0f;  // spread pool inputs apart
  Rng wr(16);
  const Tensor w = Tensor::randn(Shape({2, 4}), wr);

  net.zero_grad();
  net.forward(x, true);
  net.backward(w);

  for (auto* p : net.params()) {
    const Tensor analytic = p->grad();
    // Spot-check a deterministic sample of coordinates per parameter.
    const std::int64_t stride = std::max<std::int64_t>(p->numel() / 7, 1);
    for (std::int64_t i = 0; i < p->numel(); i += stride) {
      const float orig = p->value()[static_cast<std::size_t>(i)];
      const double eps = 1e-2;
      p->value()[static_cast<std::size_t>(i)] = orig + static_cast<float>(eps);
      const double up = ops::dot(net.forward(x, false), w);
      p->value()[static_cast<std::size_t>(i)] = orig - static_cast<float>(eps);
      const double dn = ops::dot(net.forward(x, false), w);
      p->value()[static_cast<std::size_t>(i)] = orig;
      EXPECT_NEAR(analytic[static_cast<std::size_t>(i)], (up - dn) / (2 * eps), 5e-2)
          << p->name() << "[" << i << "]";
    }
  }
}

TEST(GradCheck, BackwardToStopsAtCut) {
  // Gradients must be identical whether computed through the full network
  // or via a cut + cached features (the head-model equivalence the attack
  // engine depends on).
  Rng rng(17);
  Sequential net;
  net.add(std::make_unique<Dense>("fc1", 6, 5, rng));
  net.add(std::make_unique<ReLU>("relu1"));
  net.add(std::make_unique<Dense>("fc2", 5, 3, rng));

  Rng xr(18);
  const Tensor x = Tensor::randn(Shape({4, 6}), xr);
  Rng wr(19);
  const Tensor w = Tensor::randn(Shape({4, 3}), wr);

  // Full pass.
  net.zero_grad();
  net.forward(x, true);
  net.backward(w);
  const Tensor full_grad = net.params_from(2)[0]->grad();

  // Head pass from cached features at layer 2.
  Tensor feats = net.layer(0).forward(x, false);
  feats = net.layer(1).forward(feats, false);
  net.zero_grad();
  net.forward_from(2, feats, true);
  net.backward_to(2, w);
  const Tensor head_grad = net.params_from(2)[0]->grad();

  ASSERT_EQ(full_grad.shape(), head_grad.shape());
  for (std::size_t i = 0; i < full_grad.size(); ++i)
    EXPECT_NEAR(full_grad[i], head_grad[i], 1e-5f);
}

}  // namespace
}  // namespace fsa::nn
