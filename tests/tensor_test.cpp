// tensor_test.cpp — Shape and Tensor invariants.
#include <gtest/gtest.h>

#include "tensor/tensor.h"

namespace fsa {
namespace {

TEST(Shape, RankNumelAndDims) {
  const Shape s({2, 3, 4});
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, ScalarShapeHasNumelOne) {
  const Shape s({});
  EXPECT_EQ(s.rank(), 0u);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, StridesAreRowMajor) {
  const Shape s({2, 3, 4});
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, NegativeExtentThrows) {
  EXPECT_THROW(Shape({2, -1}), std::invalid_argument);
}

TEST(Shape, DimOutOfRangeThrows) {
  const Shape s({2, 3});
  EXPECT_THROW(s.dim(2), std::out_of_range);
  EXPECT_THROW(s.dim(-3), std::out_of_range);
}

TEST(Shape, EqualityComparesDims) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
}

TEST(Shape, StrPrintsDims) { EXPECT_EQ(Shape({1, 28, 28}).str(), "[1, 28, 28]"); }

TEST(Tensor, ZeroInitialized) {
  const Tensor t(Shape({3, 3}));
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FullFactory) {
  const Tensor t = Tensor::full(Shape({4}), 2.5f);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(Tensor, FromVector) {
  const Tensor t = Tensor::from_vector({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(t.shape(), Shape({3}));
  EXPECT_EQ(t[1], 2.0f);
}

TEST(Tensor, BufferSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape({4}), std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshape(Shape({2, 3}));
  EXPECT_EQ(r.at2(0, 2), 3.0f);
  EXPECT_EQ(r.at2(1, 0), 4.0f);
}

TEST(Tensor, ReshapeBadCountThrows) {
  Tensor t(Shape({6}));
  EXPECT_THROW(t.reshape(Shape({4})), std::invalid_argument);
}

TEST(Tensor, Slice0CopiesRows) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4, 5, 6}).reshape(Shape({3, 2}));
  const Tensor s = t.slice0(1, 3);
  EXPECT_EQ(s.shape(), Shape({2, 2}));
  EXPECT_EQ(s.at2(0, 0), 3.0f);
  EXPECT_EQ(s.at2(1, 1), 6.0f);
}

TEST(Tensor, Slice0BoundsChecked) {
  Tensor t(Shape({3, 2}));
  EXPECT_THROW(t.slice0(-1, 2), std::out_of_range);
  EXPECT_THROW(t.slice0(0, 4), std::out_of_range);
  EXPECT_THROW(t.slice0(2, 1), std::out_of_range);
}

TEST(Tensor, RowDropsLeadingDim) {
  Tensor t = Tensor::from_vector({1, 2, 3, 4}).reshape(Shape({2, 2}));
  const Tensor r = t.row(1);
  EXPECT_EQ(r.shape(), Shape({2}));
  EXPECT_EQ(r[0], 3.0f);
}

TEST(Tensor, InPlaceArithmetic) {
  Tensor a = Tensor::from_vector({1, 2, 3});
  const Tensor b = Tensor::from_vector({10, 20, 30});
  a += b;
  EXPECT_EQ(a[2], 33.0f);
  a -= b;
  EXPECT_EQ(a[2], 3.0f);
  a *= 2.0f;
  EXPECT_EQ(a[0], 2.0f);
  a.axpy(0.5f, b);
  EXPECT_EQ(a[1], 4.0f + 10.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a(Shape({3}));
  const Tensor b(Shape({4}));
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.axpy(1.0f, b), std::invalid_argument);
}

TEST(Tensor, CheckedAtThrows) {
  Tensor t(Shape({2}));
  EXPECT_THROW(t.at(2), std::out_of_range);
  EXPECT_THROW(t.at(-1), std::out_of_range);
}

TEST(Tensor, At4UsesNchwLayout) {
  Tensor t(Shape({2, 3, 4, 5}));
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[static_cast<std::size_t>(((1 * 3 + 2) * 4 + 3) * 5 + 4)], 7.0f);
}

TEST(Tensor, RandnIsDeterministicPerSeed) {
  Rng r1(5), r2(5), r3(6);
  const Tensor a = Tensor::randn(Shape({16}), r1);
  const Tensor b = Tensor::randn(Shape({16}), r2);
  const Tensor c = Tensor::randn(Shape({16}), r3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace fsa
