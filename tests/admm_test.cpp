// admm_test.cpp — the linearized-ADMM solver on a small trained network.
#include <gtest/gtest.h>

#include "core/admm.h"
#include "models/feature_cache.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace fsa::core {
namespace {

struct Fixture {
  data::Dataset train = testutil::make_blobs(600, 1);
  data::Dataset test = testutil::make_blobs(200, 2);
  data::Dataset pool = testutil::make_blobs(300, 3);
  nn::Sequential net = testutil::make_blob_net();
  double accuracy = 0.0;

  Fixture() { accuracy = testutil::train_blob_net(net, train, test); }

  AttackSpec spec(std::int64_t s, std::int64_t r, std::uint64_t seed) {
    const std::size_t cut = net.index_of("fc2");
    const Tensor feats = models::compute_features(net, cut, pool.images());
    const auto preds = models::head_predictions(net, cut, feats);
    return make_spec(feats, pool.labels(), preds, s, r, 10, seed);
  }
};

Fixture& fixture() {
  static Fixture f;  // trained once, shared across tests in this binary
  return f;
}

/// The library default ρ is calibrated to the C&W network's feature scale
/// (see AdmmConfig::rho). The blob substrate has much smaller activations,
/// so the raw-solver tests use a proportionally softer ρ — the solver-side
/// requirement is c·|feature| ≳ √(2ρ).
AdmmConfig blob_cfg() {
  AdmmConfig cfg;
  cfg.rho = 200.0;
  return cfg;
}

TEST(AdmmSetup, BlobNetTrainsWell) { EXPECT_GT(fixture().accuracy, 0.95); }

TEST(Admm, InjectsSingleFault) {
  auto& f = fixture();
  const ParamMask mask = ParamMask::make(f.net, {"fc2"});
  AdmmSolver solver(f.net, mask);
  const AttackSpec spec = f.spec(1, 1, 10);
  AdmmConfig cfg = blob_cfg();
  cfg.iterations = 400;
  const AdmmResult res = solver.solve(spec, cfg);
  // The SPARSE candidate must classify the image as the target.
  HeadGradient grad(f.net, mask);
  Tensor theta = mask.gather_values();
  theta += res.z;
  const auto [hit, kept] = count_satisfied(grad.logits_at(theta, spec), spec);
  mask.scatter_values(ops::sub(theta, res.z));
  EXPECT_EQ(hit, 1);
  EXPECT_EQ(kept, 0);  // no maintain images in this spec
  EXPECT_GT(ops::l0_norm(res.z), 0);
}

TEST(Admm, RestoresNetworkAfterSolve) {
  auto& f = fixture();
  const ParamMask mask = ParamMask::make(f.net, {"fc2"});
  const Tensor before = mask.gather_values();
  AdmmSolver solver(f.net, mask);
  AdmmConfig cfg = blob_cfg();
  cfg.iterations = 50;
  solver.solve(f.spec(1, 4, 11), cfg);
  EXPECT_EQ(mask.gather_values(), before);
}

TEST(Admm, L0SolutionIsSparserThanL2) {
  auto& f = fixture();
  const ParamMask mask = ParamMask::make(f.net, {"fc2"});
  AdmmSolver solver(f.net, mask);
  const AttackSpec spec = f.spec(1, 8, 12);
  AdmmConfig l0 = blob_cfg();
  l0.norm = NormKind::kL0;
  l0.iterations = 400;
  AdmmConfig l2 = l0;
  l2.norm = NormKind::kL2;
  const AdmmResult r0 = solver.solve(spec, l0);
  const AdmmResult r2 = solver.solve(spec, l2);
  // Hinge gradients only touch the target / strongest-wrong logit columns,
  // so even the ℓ2 solution is support-limited — but the hard-thresholding
  // ℓ0 prox must still produce a strictly sparser z than radial shrinkage.
  EXPECT_LT(ops::l0_norm(r0.z), ops::l0_norm(r2.z));
  // And the ℓ2 solution should win on magnitude.
  EXPECT_LE(ops::l2_norm(r2.z), ops::l2_norm(r0.z) * 1.5);
}

TEST(Admm, GHistoryEventuallyDecreases) {
  auto& f = fixture();
  const ParamMask mask = ParamMask::make(f.net, {"fc2"});
  AdmmSolver solver(f.net, mask);
  AdmmConfig cfg = blob_cfg();
  cfg.iterations = 200;
  cfg.check_every = 0;  // no early stop: observe the raw trajectory
  const AdmmResult res = solver.solve(f.spec(2, 6, 13), cfg);
  ASSERT_GE(res.g_history.size(), 100u);
  // The hinge loss at the end must be far below the start (faults injected).
  EXPECT_LT(res.g_history.back(), res.g_history.front() * 0.25 + 1e-9);
}

TEST(Admm, EarlyStopTriggersOnEasyProblem) {
  auto& f = fixture();
  const ParamMask mask = ParamMask::make(f.net, {"fc2"});
  AdmmSolver solver(f.net, mask);
  AdmmConfig cfg = blob_cfg();
  cfg.iterations = 2000;
  cfg.check_every = 20;
  const AdmmResult res = solver.solve(f.spec(1, 2, 14), cfg);
  EXPECT_TRUE(res.early_stopped);
  EXPECT_LT(res.iterations_run, 2000);
}

TEST(Admm, MaintainsSneakImages) {
  auto& f = fixture();
  const ParamMask mask = ParamMask::make(f.net, {"fc2"});
  AdmmSolver solver(f.net, mask);
  const AttackSpec spec = f.spec(2, 30, 15);
  AdmmConfig cfg = blob_cfg();
  cfg.iterations = 600;
  const AdmmResult res = solver.solve(spec, cfg);
  HeadGradient grad(f.net, mask);
  Tensor theta = mask.gather_values();
  theta += res.z;
  const auto [hit, kept] = count_satisfied(grad.logits_at(theta, spec), spec);
  mask.scatter_values(ops::sub(theta, res.z));
  EXPECT_EQ(hit, 2);
  EXPECT_GE(kept, 26);  // at least ~93% of the 28 sneak images maintained
}

TEST(Admm, InvalidConfigThrows) {
  auto& f = fixture();
  const ParamMask mask = ParamMask::make(f.net, {"fc2"});
  AdmmSolver solver(f.net, mask);
  AdmmConfig bad;
  bad.rho = 0.0;
  EXPECT_THROW(solver.solve(f.spec(1, 1, 16), bad), std::invalid_argument);
  bad.rho = 1.0;
  bad.iterations = 0;
  EXPECT_THROW(solver.solve(f.spec(1, 1, 16), bad), std::invalid_argument);
}

TEST(HeadGradient, MatchesFiniteDifferenceOnMaskedParams) {
  auto& f = fixture();
  const ParamMask mask = ParamMask::make(f.net, {"fc2"});
  HeadGradient grad(f.net, mask);
  const AttackSpec spec = f.spec(2, 5, 17);
  const Tensor theta0 = mask.gather_values();
  auto res = grad.eval(theta0, spec, /*c_scale=*/1.0, /*kappa=*/0.5, /*want_grad=*/true);
  const double eps = 1e-2;
  // Spot check a spread of coordinates.
  for (std::int64_t i = 0; i < mask.size(); i += 37) {
    Tensor plus = theta0, minus = theta0;
    plus[static_cast<std::size_t>(i)] += static_cast<float>(eps);
    minus[static_cast<std::size_t>(i)] -= static_cast<float>(eps);
    const double up = grad.eval(plus, spec, 1.0, 0.5, false).eval.total_g;
    const double dn = grad.eval(minus, spec, 1.0, 0.5, false).eval.total_g;
    EXPECT_NEAR(res.grad[static_cast<std::size_t>(i)], (up - dn) / (2 * eps), 0.05)
        << "coordinate " << i;
  }
  mask.scatter_values(theta0);
}

}  // namespace
}  // namespace fsa::core
