// defense_test.cpp — integrity and sanitization guards, plus the unified
// Defense interface/registry the arena deploys them through.
#include <gtest/gtest.h>

#include <algorithm>

#include "defense/checksum_guard.h"
#include "defense/defense.h"
#include "defense/defenses.h"
#include "defense/range_guard.h"
#include "tensor/ops.h"

namespace fsa::defense {
namespace {

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(ChecksumGuard, CleanParamsPass) {
  Rng rng(1);
  const Tensor params = Tensor::randn(Shape({1000}), rng);
  const ChecksumGuard guard(params, 64);
  const auto res = guard.verify(params);
  EXPECT_FALSE(res.detected);
  EXPECT_EQ(res.blocks_flagged, 0);
}

TEST(ChecksumGuard, AnySingleChangeDetected) {
  Rng rng(2);
  const Tensor params = Tensor::randn(Shape({512}), rng);
  const ChecksumGuard guard(params, 64);
  for (std::size_t i : {std::size_t{0}, std::size_t{63}, std::size_t{64}, std::size_t{511}}) {
    Tensor tampered = params;
    tampered[i] += 1e-4f;
    const auto res = guard.verify(tampered);
    EXPECT_TRUE(res.detected) << "change at " << i << " slipped through";
    EXPECT_EQ(res.blocks_flagged, 1);
    EXPECT_EQ(res.flagged[0], static_cast<std::int64_t>(i) / 64);
  }
}

TEST(ChecksumGuard, FlagsLocalizeTampering) {
  Rng rng(3);
  const Tensor params = Tensor::randn(Shape({640}), rng);
  const ChecksumGuard guard(params, 64);
  Tensor tampered = params;
  tampered[70] += 1.0f;   // block 1
  tampered[400] += 1.0f;  // block 6
  const auto res = guard.verify(tampered);
  EXPECT_EQ(res.blocks_flagged, 2);
  EXPECT_EQ(res.flagged[0], 1);
  EXPECT_EQ(res.flagged[1], 6);
}

TEST(ChecksumGuard, GranularityTradesOverheadForLocalization) {
  Rng rng(4);
  const Tensor params = Tensor::randn(Shape({2010}), rng);
  const ChecksumGuard fine(params, 16);
  const ChecksumGuard coarse(params, 1024);
  EXPECT_GT(fine.overhead_bytes(), coarse.overhead_bytes());
  EXPECT_EQ(coarse.block_count(), 2);
  EXPECT_EQ(fine.block_count(), (2010 + 15) / 16);
}

TEST(ChecksumGuard, LastPartialBlockCovered) {
  Rng rng(5);
  const Tensor params = Tensor::randn(Shape({100}), rng);
  const ChecksumGuard guard(params, 64);  // blocks: 64 + 36
  Tensor tampered = params;
  tampered[99] *= 2.0f;
  EXPECT_TRUE(guard.verify(tampered).detected);
}

TEST(ChecksumGuard, RejectsBadConfigAndSize) {
  Rng rng(6);
  const Tensor params = Tensor::randn(Shape({10}), rng);
  EXPECT_THROW(ChecksumGuard(params, 0), std::invalid_argument);
  const ChecksumGuard guard(params, 4);
  EXPECT_THROW(guard.verify(Tensor(Shape({11}))), std::invalid_argument);
}

TEST(RangeGuard, CleanParamsPass) {
  Rng rng(7);
  Tensor params = Tensor::randn(Shape({256}), rng);
  const RangeGuard guard(params, 64);
  const auto res = guard.sanitize(params);
  EXPECT_FALSE(res.alarm);
  EXPECT_EQ(res.out_of_range, 0);
}

TEST(RangeGuard, SlackToleratesSmallDrift) {
  Tensor params = Tensor::from_vector({-1.0f, 0.0f, 1.0f, 0.5f});
  const RangeGuard guard(params, 4, /*slack=*/0.10);
  Tensor drifted = params;
  drifted[2] = 1.05f;  // inside the 10% widened range
  EXPECT_FALSE(guard.sanitize(drifted).alarm);
}

TEST(RangeGuard, ClampsOutOfRangeValues) {
  Tensor params = Tensor::from_vector({-1.0f, 0.0f, 1.0f, 0.5f});
  const RangeGuard guard(params, 4, 0.0);
  Tensor attacked = params;
  attacked[0] = -5.0f;
  attacked[3] = 9.0f;
  const auto res = guard.sanitize(attacked);
  EXPECT_TRUE(res.alarm);
  EXPECT_EQ(res.out_of_range, 2);
  EXPECT_EQ(res.clamped, 2);
  EXPECT_FLOAT_EQ(attacked[0], -1.0f);
  EXPECT_FLOAT_EQ(attacked[3], 1.0f);
}

TEST(RangeGuard, DetectOnlyModeLeavesValues) {
  Tensor params = Tensor::from_vector({0.0f, 1.0f});
  const RangeGuard guard(params, 2, 0.0);
  Tensor attacked = params;
  attacked[0] = -3.0f;
  const auto res = guard.sanitize(attacked, /*clamp=*/false);
  EXPECT_TRUE(res.alarm);
  EXPECT_EQ(res.clamped, 0);
  EXPECT_FLOAT_EQ(attacked[0], -3.0f);
}

TEST(RangeGuard, InRangeModificationsInvisible) {
  // The defense's blind spot: modifications inside the trained range pass.
  Rng rng(8);
  Tensor params = Tensor::randn(Shape({128}), rng);
  const RangeGuard guard(params, 128, 0.0);
  Tensor attacked = params;
  attacked[5] = attacked[6];  // swap-in another in-range value
  EXPECT_FALSE(guard.sanitize(attacked).alarm);
}

TEST(RangeGuard, PerGroupRangesAreIndependent) {
  // Group 0 in [0, 1], group 1 in [10, 11]: a 10 inside group 0 must alarm.
  Tensor params = Tensor::from_vector({0.0f, 1.0f, 10.0f, 11.0f});
  const RangeGuard guard(params, 2, 0.0);
  Tensor attacked = params;
  attacked[1] = 10.0f;
  EXPECT_TRUE(guard.sanitize(attacked).alarm);
}

TEST(RangeGuard, RejectsBadConfig) {
  Tensor params = Tensor::from_vector({0.0f});
  EXPECT_THROW(RangeGuard(params, 0), std::invalid_argument);
  EXPECT_THROW(RangeGuard(params, 1, -0.5), std::invalid_argument);
}

TEST(RangeGuard, CheckMatchesDetectOnlySanitizeAndLeavesValues) {
  Rng rng(9);
  Tensor params = Tensor::randn(Shape({256}), rng);
  const RangeGuard guard(params, 32, 0.0);
  Tensor attacked = params;
  attacked[3] = 100.0f;
  attacked[40] = -100.0f;
  attacked[41] = 100.0f;
  Tensor audit_copy = attacked;
  const auto checked = guard.check(attacked);
  const auto detect_only = guard.sanitize(audit_copy, /*clamp=*/false);
  EXPECT_EQ(checked.out_of_range, detect_only.out_of_range);
  EXPECT_EQ(checked.groups_flagged, detect_only.groups_flagged);
  EXPECT_EQ(checked.clamped, 0);
  EXPECT_EQ(checked.alarm, detect_only.alarm);
  EXPECT_EQ(checked.out_of_range, 3);
  EXPECT_EQ(checked.groups_flagged, 2);
  EXPECT_FLOAT_EQ(attacked[3], 100.0f);  // check() never mutates
}

// ---- the Defense registry -----------------------------------------------------

TEST(DefenseRegistry, BuiltinsAndStrictUnknownName) {
  for (const char* name : {"canary", "checksum", "ensemble", "range"})
    EXPECT_TRUE(has_defense(name)) << name;
  EXPECT_GE(defense_names().size(), 4u);
  DefenseConfig bad;
  bad.name = "does-not-exist";
  try {
    (void)make_defense(bad);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("does-not-exist"), std::string::npos);
    EXPECT_NE(msg.find("range"), std::string::npos);  // lists known defenses
  }
}

TEST(DefenseConfig, CanonicalKeysApplyRegisteredDefaults) {
  EXPECT_EQ(parse_defense("checksum").key(), "checksum/64");
  EXPECT_EQ(parse_defense("checksum/16").key(), "checksum/16");
  EXPECT_EQ(parse_defense("range").key(), "range/201/0.1");
  EXPECT_EQ(parse_defense("range/8/0").key(), "range/8/0");
  EXPECT_EQ(parse_defense("canary/5").key(), "canary/5");
  // Ensembles join member keys; "0.10" and "0.1" canonicalize identically.
  EXPECT_EQ(parse_defense("checksum/64+range/201/0.10").key(), "checksum/64+range/201/0.1");
}

TEST(DefenseConfig, ParseRejectsMalformedAndUnknown) {
  EXPECT_THROW(parse_defense(""), std::invalid_argument);
  EXPECT_THROW(parse_defense("nope"), std::invalid_argument);
  EXPECT_THROW(parse_defense("range/abc"), std::invalid_argument);
  EXPECT_THROW(parse_defense("range/8/x"), std::invalid_argument);
  EXPECT_THROW(parse_defense("range/8/0.1/9"), std::invalid_argument);
  EXPECT_THROW(parse_defense("checksum+nope"), std::invalid_argument);
  DefenseConfig lone = parse_defense("checksum");
  lone.members.push_back(parse_defense("range"));  // only "ensemble" composes
  EXPECT_THROW((void)make_defense(lone), std::invalid_argument);
}

TEST(DefenseConfig, JsonRoundTripPreservesKey) {
  const DefenseConfig c = parse_defense("checksum/16+range/8/0.25");
  const DefenseConfig back = DefenseConfig::from_json(eval::Json::parse(c.to_json().dump(2)));
  EXPECT_EQ(back.name, "ensemble");
  ASSERT_EQ(back.members.size(), 2u);
  EXPECT_DOUBLE_EQ(back.members[1].slack, 0.25);
  EXPECT_EQ(back.key(), c.key());
}

TEST(DefenseLifecycle, VerifyBeforeSnapshotThrows) {
  const DefensePtr d = make_defense(parse_defense("checksum"));
  EXPECT_THROW((void)d->verify(Tensor(Shape({4}))), std::logic_error);
}

TEST(CanaryDefense, DetectsSentinelHitsAndRestoresThem) {
  Rng rng(10);
  const Tensor params = Tensor::randn(Shape({200}), rng);
  CanaryDefense canary(8);
  canary.snapshot(params);
  ASSERT_EQ(canary.sentinel_indices().size(), 8u);
  EXPECT_EQ(canary.overhead_bytes(), 8 * 12);
  EXPECT_EQ(canary.verify_cost(), 8);
  EXPECT_FALSE(canary.verify(params).detected);

  // Tamper with one watched and one unwatched parameter: only the
  // sentinel hit is visible (probabilistic coverage is the price of O(K)).
  const std::int64_t watched = canary.sentinel_indices()[3];
  std::int64_t unwatched = 0;
  while (std::count(canary.sentinel_indices().begin(), canary.sentinel_indices().end(),
                    unwatched) > 0)
    ++unwatched;
  Tensor tampered = params;
  tampered[static_cast<std::size_t>(watched)] += 0.5f;
  tampered[static_cast<std::size_t>(unwatched)] += 0.5f;
  const VerifyOutcome res = canary.verify(tampered);
  EXPECT_TRUE(res.detected);
  EXPECT_EQ(res.violations, 1);

  EXPECT_EQ(canary.sanitize(tampered), 1);  // restores the sentinel only
  EXPECT_FLOAT_EQ(tampered[static_cast<std::size_t>(watched)],
                  params[static_cast<std::size_t>(watched)]);
  EXPECT_FALSE(canary.verify(tampered).detected);
}

TEST(CanaryDefense, PlacementIsAPureFunctionOfShape) {
  Rng rng(11);
  const Tensor a = Tensor::randn(Shape({300}), rng);
  const Tensor b = Tensor::randn(Shape({300}), rng);  // different values, same n
  CanaryDefense ca(16), cb(16);
  ca.snapshot(a);
  cb.snapshot(b);
  EXPECT_EQ(ca.sentinel_indices(), cb.sentinel_indices());
}

TEST(EnsembleDefense, OrDetectionAndSummedCosts) {
  Rng rng(12);
  const Tensor params = Tensor::randn(Shape({256}), rng);
  const DefensePtr ensemble = make_defense(parse_defense("checksum/64+range/64/0"));
  ensemble->snapshot(params);
  EXPECT_FALSE(ensemble->verify(params).detected);

  ChecksumDefense checksum(64);
  RangeDefense range(64, 0.0);
  checksum.snapshot(params);
  range.snapshot(params);
  EXPECT_EQ(ensemble->overhead_bytes(), checksum.overhead_bytes() + range.overhead_bytes());
  EXPECT_EQ(ensemble->verify_cost(), checksum.verify_cost() + range.verify_cost());

  // An IN-RANGE modification: invisible to range, caught by checksum — the
  // ensemble's OR catches it.
  Tensor tampered = params;
  tampered[10] = tampered[11];
  EXPECT_FALSE(range.verify(tampered).detected);
  EXPECT_TRUE(checksum.verify(tampered).detected);
  EXPECT_TRUE(ensemble->verify(tampered).detected);

  // An OUT-of-range modification: ensemble sanitize clamps it (via range).
  tampered[20] = 1.0e6f;
  EXPECT_GE(ensemble->sanitize(tampered), 1);
  EXPECT_LE(tampered[20], 1.0e5f);
}

}  // namespace
}  // namespace fsa::defense
