// defense_test.cpp — integrity and sanitization guards.
#include <gtest/gtest.h>

#include "defense/checksum_guard.h"
#include "defense/range_guard.h"
#include "tensor/ops.h"

namespace fsa::defense {
namespace {

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(ChecksumGuard, CleanParamsPass) {
  Rng rng(1);
  const Tensor params = Tensor::randn(Shape({1000}), rng);
  const ChecksumGuard guard(params, 64);
  const auto res = guard.verify(params);
  EXPECT_FALSE(res.detected);
  EXPECT_EQ(res.blocks_flagged, 0);
}

TEST(ChecksumGuard, AnySingleChangeDetected) {
  Rng rng(2);
  const Tensor params = Tensor::randn(Shape({512}), rng);
  const ChecksumGuard guard(params, 64);
  for (std::size_t i : {std::size_t{0}, std::size_t{63}, std::size_t{64}, std::size_t{511}}) {
    Tensor tampered = params;
    tampered[i] += 1e-4f;
    const auto res = guard.verify(tampered);
    EXPECT_TRUE(res.detected) << "change at " << i << " slipped through";
    EXPECT_EQ(res.blocks_flagged, 1);
    EXPECT_EQ(res.flagged[0], static_cast<std::int64_t>(i) / 64);
  }
}

TEST(ChecksumGuard, FlagsLocalizeTampering) {
  Rng rng(3);
  const Tensor params = Tensor::randn(Shape({640}), rng);
  const ChecksumGuard guard(params, 64);
  Tensor tampered = params;
  tampered[70] += 1.0f;   // block 1
  tampered[400] += 1.0f;  // block 6
  const auto res = guard.verify(tampered);
  EXPECT_EQ(res.blocks_flagged, 2);
  EXPECT_EQ(res.flagged[0], 1);
  EXPECT_EQ(res.flagged[1], 6);
}

TEST(ChecksumGuard, GranularityTradesOverheadForLocalization) {
  Rng rng(4);
  const Tensor params = Tensor::randn(Shape({2010}), rng);
  const ChecksumGuard fine(params, 16);
  const ChecksumGuard coarse(params, 1024);
  EXPECT_GT(fine.overhead_bytes(), coarse.overhead_bytes());
  EXPECT_EQ(coarse.block_count(), 2);
  EXPECT_EQ(fine.block_count(), (2010 + 15) / 16);
}

TEST(ChecksumGuard, LastPartialBlockCovered) {
  Rng rng(5);
  const Tensor params = Tensor::randn(Shape({100}), rng);
  const ChecksumGuard guard(params, 64);  // blocks: 64 + 36
  Tensor tampered = params;
  tampered[99] *= 2.0f;
  EXPECT_TRUE(guard.verify(tampered).detected);
}

TEST(ChecksumGuard, RejectsBadConfigAndSize) {
  Rng rng(6);
  const Tensor params = Tensor::randn(Shape({10}), rng);
  EXPECT_THROW(ChecksumGuard(params, 0), std::invalid_argument);
  const ChecksumGuard guard(params, 4);
  EXPECT_THROW(guard.verify(Tensor(Shape({11}))), std::invalid_argument);
}

TEST(RangeGuard, CleanParamsPass) {
  Rng rng(7);
  Tensor params = Tensor::randn(Shape({256}), rng);
  const RangeGuard guard(params, 64);
  const auto res = guard.sanitize(params);
  EXPECT_FALSE(res.alarm);
  EXPECT_EQ(res.out_of_range, 0);
}

TEST(RangeGuard, SlackToleratesSmallDrift) {
  Tensor params = Tensor::from_vector({-1.0f, 0.0f, 1.0f, 0.5f});
  const RangeGuard guard(params, 4, /*slack=*/0.10);
  Tensor drifted = params;
  drifted[2] = 1.05f;  // inside the 10% widened range
  EXPECT_FALSE(guard.sanitize(drifted).alarm);
}

TEST(RangeGuard, ClampsOutOfRangeValues) {
  Tensor params = Tensor::from_vector({-1.0f, 0.0f, 1.0f, 0.5f});
  const RangeGuard guard(params, 4, 0.0);
  Tensor attacked = params;
  attacked[0] = -5.0f;
  attacked[3] = 9.0f;
  const auto res = guard.sanitize(attacked);
  EXPECT_TRUE(res.alarm);
  EXPECT_EQ(res.out_of_range, 2);
  EXPECT_EQ(res.clamped, 2);
  EXPECT_FLOAT_EQ(attacked[0], -1.0f);
  EXPECT_FLOAT_EQ(attacked[3], 1.0f);
}

TEST(RangeGuard, DetectOnlyModeLeavesValues) {
  Tensor params = Tensor::from_vector({0.0f, 1.0f});
  const RangeGuard guard(params, 2, 0.0);
  Tensor attacked = params;
  attacked[0] = -3.0f;
  const auto res = guard.sanitize(attacked, /*clamp=*/false);
  EXPECT_TRUE(res.alarm);
  EXPECT_EQ(res.clamped, 0);
  EXPECT_FLOAT_EQ(attacked[0], -3.0f);
}

TEST(RangeGuard, InRangeModificationsInvisible) {
  // The defense's blind spot: modifications inside the trained range pass.
  Rng rng(8);
  Tensor params = Tensor::randn(Shape({128}), rng);
  const RangeGuard guard(params, 128, 0.0);
  Tensor attacked = params;
  attacked[5] = attacked[6];  // swap-in another in-range value
  EXPECT_FALSE(guard.sanitize(attacked).alarm);
}

TEST(RangeGuard, PerGroupRangesAreIndependent) {
  // Group 0 in [0, 1], group 1 in [10, 11]: a 10 inside group 0 must alarm.
  Tensor params = Tensor::from_vector({0.0f, 1.0f, 10.0f, 11.0f});
  const RangeGuard guard(params, 2, 0.0);
  Tensor attacked = params;
  attacked[1] = 10.0f;
  EXPECT_TRUE(guard.sanitize(attacked).alarm);
}

TEST(RangeGuard, RejectsBadConfig) {
  Tensor params = Tensor::from_vector({0.0f});
  EXPECT_THROW(RangeGuard(params, 0), std::invalid_argument);
  EXPECT_THROW(RangeGuard(params, 1, -0.5), std::invalid_argument);
}

}  // namespace
}  // namespace fsa::defense
