// detect_test.cpp — the weight-audit detector.
#include <gtest/gtest.h>

#include "eval/detect.h"
#include "tensor/ops.h"

namespace fsa::eval {
namespace {

TEST(Audit, IdenticalTensorsScoreZero) {
  Rng rng(1);
  const Tensor w = Tensor::randn(Shape({512}), rng);
  const AuditReport rep = audit_weights(w, w);
  EXPECT_EQ(rep.changed_fraction, 0.0);
  EXPECT_EQ(rep.max_abs_change, 0.0);
  EXPECT_EQ(rep.mean_shift, 0.0);
  EXPECT_DOUBLE_EQ(rep.std_ratio, 1.0);
  EXPECT_EQ(rep.ks_statistic, 0.0);
  EXPECT_EQ(anomaly_score(rep), 0.0);
}

TEST(Audit, SingleHugeChangeIsLoud) {
  Rng rng(2);
  const Tensor before = Tensor::randn(Shape({512}), rng, 0.0f, 0.1f);
  Tensor after = before;
  after[7] += 5.0f;
  const AuditReport rep = audit_weights(before, after);
  EXPECT_NEAR(rep.changed_fraction, 1.0 / 512.0, 1e-9);
  EXPECT_NEAR(rep.max_abs_change, 5.0, 1e-5);
  EXPECT_GE(anomaly_score(rep), 1.0);  // max-magnitude channel saturates
}

TEST(Audit, ManyTinyChangesShowInChangedFraction) {
  Rng rng(3);
  const Tensor before = Tensor::randn(Shape({1000}), rng, 0.0f, 0.1f);
  Tensor after = before;
  for (std::size_t i = 0; i < after.size(); ++i) after[i] += 1e-4f;
  const AuditReport rep = audit_weights(before, after);
  EXPECT_DOUBLE_EQ(rep.changed_fraction, 1.0);
  EXPECT_LT(rep.max_abs_change, 1e-3);
  EXPECT_GE(anomaly_score(rep), 1.0);  // hash-style audit catches it
}

TEST(Audit, MeanShiftDetected) {
  Rng rng(4);
  const Tensor before = Tensor::randn(Shape({2000}), rng, 0.0f, 0.1f);
  Tensor after = before;
  for (auto& v : after.span()) v += 0.2f;
  const AuditReport rep = audit_weights(before, after);
  EXPECT_NEAR(rep.mean_shift, 0.2, 1e-3);
  EXPECT_GT(rep.ks_statistic, 0.5);
}

TEST(Audit, KsZeroForPermutation) {
  // A permutation of the same values is distribution-identical: KS = 0
  // even though every position changed — the audit channels are distinct.
  const Tensor before = Tensor::from_vector({1, 2, 3, 4, 5, 6});
  const Tensor after = Tensor::from_vector({6, 5, 4, 3, 2, 1});
  const AuditReport rep = audit_weights(before, after);
  EXPECT_EQ(rep.ks_statistic, 0.0);
  EXPECT_EQ(rep.changed_fraction, 1.0);
}

TEST(Audit, ShapeMismatchThrows) {
  EXPECT_THROW(audit_weights(Tensor(Shape({2})), Tensor(Shape({3}))), std::invalid_argument);
}

TEST(Audit, ScoreMonotoneInMagnitude) {
  Rng rng(5);
  const Tensor before = Tensor::randn(Shape({256}), rng, 0.0f, 0.1f);
  Tensor small = before, large = before;
  small[0] += 0.3f;
  large[0] += 1.4f;
  EXPECT_LT(anomaly_score(audit_weights(before, small)),
            anomaly_score(audit_weights(before, large)));
}

}  // namespace
}  // namespace fsa::eval
