// targeted_misclassification.cpp — the scenario from the paper's intro:
// an adversary wants SPECIFIC inputs misrouted (think: one face accepted
// as another identity, one malware sample whitelisted) without touching
// the model's visible quality.
//
// This example injects S = 3 designated faults with chosen target labels,
// runs BOTH norm variants of the attack, and inspects the result at the
// parameter level: which images moved, which stayed, and how the two
// variants spend their modification budget differently.
//
// Run from the repository root:  ./build/examples/targeted_misclassification
#include <cstdio>

#include "engine/sweep.h"
#include "eval/table.h"
#include "tensor/ops.h"

namespace {

void describe_delta(const char* tag, const fsa::Tensor& delta) {
  using namespace fsa;
  // Budget profile: how large are the modifications the attack makes?
  float max_abs = 0.0f;
  std::int64_t tiny = 0, small = 0, large = 0;
  for (float v : delta.span()) {
    const float a = std::fabs(v);
    max_abs = std::max(max_abs, a);
    if (a == 0.0f) continue;
    if (a < 0.05f)
      ++tiny;
    else if (a < 0.3f)
      ++small;
    else
      ++large;
  }
  std::printf("  %s: l0=%lld l2=%.3f max|δ|=%.3f (entries: %lld <0.05, %lld <0.3, %lld ≥0.3)\n",
              tag, static_cast<long long>(ops::l0_norm(delta)), ops::l2_norm(delta), max_abs,
              static_cast<long long>(tiny), static_cast<long long>(small),
              static_cast<long long>(large));
}

}  // namespace

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());
  eval::AttackBench& bench = runner.bench({"fc3"});

  // Three designated faults among 200 images the model currently gets right.
  const std::int64_t S = 3, R = 200;
  const core::AttackSpec spec = bench.spec(S, R, /*seed=*/4242);
  std::printf("\nDesignated faults (digit → attacker's target):\n");
  // Recover the original predictions for display: the maintain labels ARE
  // the original predictions; for the S fault rows we re-predict.
  {
    const Tensor logits = zoo.digits().net.forward_from(bench.attack().cut(),
                                                        spec.features.slice0(0, S));
    const auto pred = ops::argmax_rows(logits);
    for (std::int64_t i = 0; i < S; ++i)
      std::printf("  image %lld: classified %lld → must become %lld\n",
                  static_cast<long long>(i), static_cast<long long>(pred[static_cast<std::size_t>(i)]),
                  static_cast<long long>(spec.labels[static_cast<std::size_t>(i)]));
  }

  // Both norm variants are independent instances — one declarative sweep,
  // solved concurrently by the engine.
  engine::Sweep sweep_cfg;
  sweep_cfg.methods({"fsa-l0", "fsa-l2"}).layers({"fc3"}).sr_pairs({{S, R}}).seeds({4242});
  const engine::SweepResult result = runner.run(sweep_cfg);

  eval::Table table("targeted misclassification: l0 vs l2 attack (S=3, R=200, fc3)");
  table.header({"variant", "faults in", "kept", "l0", "l2", "test acc after"});
  for (const auto& [method, tag] :
       std::vector<std::pair<std::string, const char*>>{{"fsa-l0", "l0 attack"},
                                                        {"fsa-l2", "l2 attack"}}) {
    const auto& rep = result.row(method, S, R).report;
    table.row({tag, std::to_string(rep.targets_hit) + "/" + std::to_string(S),
               std::to_string(rep.maintained) + "/" + std::to_string(R - S),
               std::to_string(rep.l0), eval::fmt(rep.l2, 3), eval::pct(rep.test_accuracy)});
    describe_delta(tag, rep.delta);
  }
  table.print();
  std::printf(
      "\nReading the table: the l0 variant concentrates its budget on few large\n"
      "modifications (fewer memory words to corrupt); the l2 variant smears a\n"
      "gentler modification across more parameters. Both keep the score sheet\n"
      "clean — that is the \"sneaking\" part.\n");
  return 0;
}
