// hardware_campaign.cpp — the full kill chain, algorithm to silicon.
//
// The paper's §2.3 argues the ℓ0 objective matters because physical fault
// injection (laser on SRAM, row hammer on DRAM, clock glitching) pays per
// modified bit. This example walks the whole chain once:
//   1. solve the attack (ℓ0, S=2 faults, 100 anchors, last FC layer);
//   2. lower δ to an IEEE-754 bit-flip plan against a simulated DRAM
//      layout of the parameter array;
//   3. run every registered injector's Monte-Carlo campaign through the
//      sharded CampaignRunner (1 vs 8 shards — identical totals) and
//      report the projected effort next to the planner's estimate;
//   4. replay the same campaign through the multi-process job-directory
//      protocol (docs/DIST.md) and verify the reduced totals match the
//      in-process run byte for byte.
//
// Run from the repository root:  ./build/examples/hardware_campaign
#include <cstdio>
#include <filesystem>

#include "dist/jobs.h"
#include "dist/reducer.h"
#include "engine/registry.h"
#include "eval/attack_bench.h"
#include "eval/table.h"
#include "faultsim/campaign.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  eval::AttackBench bench(zoo.digits(), zoo.cache_dir(), {"fc3"});

  // ---- 1. the algorithmic attack --------------------------------------------
  const core::AttackSpec spec = bench.spec(2, 100, /*seed=*/1337);
  const engine::AttackReport res =
      engine::make_attacker("fsa-l0")->run(zoo.digits().net, bench.attack().mask(), spec);
  std::printf("\nAttack solved: %lld/%lld faults, %lld/%lld anchors kept, l0=%lld, l2=%.3f\n",
              static_cast<long long>(res.targets_hit), 2LL,
              static_cast<long long>(res.maintained), 98LL, static_cast<long long>(res.l0),
              res.l2);

  // ---- 2. lower to bit flips --------------------------------------------------
  faultsim::MemoryLayout layout;  // 8 KiB DRAM rows, float32 parameters
  const faultsim::BitFlipPlan plan =
      faultsim::plan_bit_flips(bench.attack().theta0(), res.delta, layout);
  eval::Table plan_table("bit-flip plan for δ (last FC layer in simulated DRAM)");
  plan_table.header({"quantity", "value"})
      .row({"parameters to rewrite", std::to_string(plan.params_modified)})
      .row({"total bit flips", std::to_string(plan.total_bit_flips)})
      .row({"DRAM rows touched", std::to_string(plan.rows_touched)})
      .row({"sign bits", std::to_string(plan.sign_bit_flips)})
      .row({"exponent bits", std::to_string(plan.exponent_bit_flips)})
      .row({"mantissa bits", std::to_string(plan.mantissa_bit_flips)});
  plan_table.print();

  // ---- 3. simulate every registered injector, sharded ------------------------
  const faultsim::CampaignRunner serial(/*shards=*/1, /*campaign_seed=*/99);
  const faultsim::CampaignRunner sharded(/*shards=*/8, /*campaign_seed=*/99);

  eval::Table campaign("projected injection campaigns (8-way sharded)");
  campaign.header(
      {"injector", "bits flipped", "attempts", "massages", "time", "estimate", "complete"});
  auto dur = [](double s) {
    return s < 3600 ? eval::fmt(s / 60.0, 1) + " min" : eval::fmt(s / 3600.0, 2) + " h";
  };
  for (const std::string& name : faultsim::injector_names()) {
    const faultsim::InjectorPtr injector = faultsim::make_injector(name);
    const faultsim::CampaignReport rep = sharded.run(*injector, plan, layout);
    // The planner's K-invariance contract: sharding is a throughput knob,
    // never a result knob.
    const faultsim::CampaignReport unsharded = serial.run(*injector, plan, layout);
    if (rep.seconds != unsharded.seconds || rep.attempts != unsharded.attempts) {
      std::printf("BUG: shard totals diverged for %s\n", name.c_str());
      return 1;
    }
    campaign.row({name, std::to_string(rep.bits_flipped), std::to_string(rep.attempts),
                  std::to_string(rep.massages), dur(rep.seconds),
                  dur(injector->plan_cost(plan, layout)), rep.success ? "yes" : "no"});
  }
  campaign.print();

  // ---- 4. the same campaign through the dist job protocol ---------------------
  // A job directory is the whole multi-process coordination state: lay the
  // rowhammer campaign out as one, execute each shard through the worker
  // entry (what `fsa_cli campaign --run-shard` / `--workers N` runs in
  // child processes), and reduce. Zero drift: the merged report equals the
  // in-process totals exactly.
  const auto job_path = std::filesystem::temp_directory_path() / "fsa_example_campaign_job";
  std::filesystem::remove_all(job_path);
  const faultsim::CampaignPlanner planner("rowhammer", /*shards=*/8, /*campaign_seed=*/99);
  const dist::JobDir job = dist::create_campaign_job(job_path.string(), planner, plan, layout);
  const eval::Json manifest = job.manifest();
  for (int s = 0; s < job.shards(); ++s)
    job.write_result(s, dist::run_campaign_shard(manifest, s));
  const faultsim::CampaignReport reduced =
      faultsim::CampaignReport::from_json(dist::reduce_job(job).at("report"));
  const faultsim::CampaignReport in_process =
      sharded.run(*faultsim::make_injector("rowhammer"), plan, layout);
  std::filesystem::remove_all(job_path);
  if (reduced.to_json().dump() != in_process.to_json().dump()) {
    std::printf("BUG: job-directory reduction drifted from the in-process campaign\n");
    return 1;
  }
  std::printf("\ndist job replay: 8 shard workers -> reduced %lld attempts / %.2f h, "
              "byte-identical to the in-process run\n",
              static_cast<long long>(reduced.attempts), reduced.seconds / 3600.0);

  std::printf(
      "\nEvery parameter the solver left untouched is beam time / hammer time the\n"
      "attacker never spends — which is why the framework minimizes ‖δ‖₀ and not\n"
      "just some differentiable surrogate (paper §2.3, §3.1).\n");
  return 0;
}
