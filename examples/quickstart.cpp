// quickstart.cpp — the 60-second tour of the library.
//
//   1. get a trained C&W network from the model zoo (first run trains it
//      on the synthetic digits dataset and caches it under .fsa_cache/);
//   2. pick R = 100 images the model classifies correctly, choose a target
//      label for the first one (S = 1);
//   3. run the ℓ0 fault sneaking attack against the last FC layer;
//   4. verify: the fault is injected, the other 99 images keep their
//      labels, test accuracy barely moves, and only a handful of the
//      2010 parameters changed.
//
// Run from the repository root:  ./build/examples/quickstart
#include <cstdio>

#include "engine/registry.h"
#include "eval/attack_bench.h"
#include "eval/table.h"

int main() {
  using namespace fsa;

  // ---- 1. model ------------------------------------------------------------
  models::ModelZoo zoo;
  models::ZooModel& digits = zoo.digits();
  std::printf("\nModel: C&W convnet on synthetic digits, test accuracy %s\n",
              eval::pct(digits.test_accuracy).c_str());

  // ---- 2. attack problem ----------------------------------------------------
  // Attack surface: weights+biases of the last FC layer (2010 parameters).
  eval::AttackBench bench(digits, zoo.cache_dir(), {"fc3"});
  const std::int64_t S = 1, R = 100;
  const core::AttackSpec spec = bench.spec(S, R, /*seed=*/2024);
  std::printf("Attack problem: S=%lld fault(s) among R=%lld images; surface: %s\n",
              static_cast<long long>(S), static_cast<long long>(R),
              bench.attack().mask().describe().c_str());

  // ---- 3. run the ℓ0 fault sneaking attack ---------------------------------
  // Methods are picked from the engine registry by name — swap "fsa-l0" for
  // "fsa-l2", "gda" or "sba" to run a different attack on the same problem.
  const engine::AttackerPtr attacker = engine::make_attacker("fsa-l0");
  const engine::AttackReport res = attacker->run(digits.net, bench.attack().mask(), spec);

  // ---- 4. report -------------------------------------------------------------
  const double acc_after = bench.test_accuracy_with(res.delta);
  eval::Table table("quickstart: " + attacker->name() + " fault sneaking attack on fc3");
  table.header({"metric", "value"})
      .row({"faults injected", std::to_string(res.targets_hit) + " / " + std::to_string(S)})
      .row({"sneak images kept", std::to_string(res.maintained) + " / " + std::to_string(R - S)})
      .row({"parameters modified (l0)", std::to_string(res.l0) + " of " +
                                            std::to_string(bench.attack().mask().size())})
      .row({"modification magnitude (l2)", eval::fmt(res.l2)})
      .row({"test accuracy before", eval::pct(bench.clean_test_accuracy())})
      .row({"test accuracy after", eval::pct(acc_after)})
      .row({"attack wall time", eval::fmt(res.seconds, 2) + " s"});
  table.print();

  if (!res.all_targets_hit) {
    std::printf("\nNOTE: the fault was not injected — see EXPERIMENTS.md for tuning.\n");
    return 1;
  }
  if (bench.clean_test_accuracy() - acc_after < 0.05)
    std::printf("\nThe fault is in; the model still looks healthy. That is the attack.\n");
  else
    std::printf("\nThe fault is in, but the accuracy dent is visible — raise R to make the\n"
                "attack sneakier (the paper's Table 4 quantifies exactly this trade-off).\n");
  return 0;
}
