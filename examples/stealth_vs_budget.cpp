// stealth_vs_budget.cpp — how many camouflage images does stealth cost?
//
// The paper's central mechanism (§3, Table 4): the R − S "maintain" images
// act as anchors — constraints that pin the perturbed model to the
// original everywhere except the S designated faults. This example fixes
// S = 4 faults and sweeps the anchor budget, answering the operational
// question an adversary (or a defender sizing the risk) actually has:
// how much data must the attacker collect for the attack to stay hidden?
//
// The six budgets are independent attack instances, so the sweep engine
// solves them concurrently (FSA_NUM_THREADS workers, identical results
// for any worker count).
//
// Run from the repository root:  ./build/examples/stealth_vs_budget
#include <cstdio>

#include "engine/sweep.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  engine::SweepRunner runner(zoo.digits(), zoo.cache_dir());
  const double clean = runner.bench({"fc3"}).clean_test_accuracy();
  std::printf("\nClean test accuracy: %s. Injecting S=4 faults with growing anchor sets.\n",
              eval::pct(clean).c_str());

  const std::int64_t S = 4;
  const std::vector<std::int64_t> r_sweep = {4, 10, 50, 100, 500, 1000};

  engine::Sweep sweep;
  sweep.layers({"fc3"}).s_values({S}).r_values(r_sweep).seeds({777});
  const engine::SweepResult result = runner.run(sweep);

  eval::Table table("stealth vs anchor budget (S=4 faults, digits, fc3)");
  table.header({"R (anchors = R-4)", "faults in", "l0", "test acc after", "drop", "verdict"});
  for (const std::int64_t r : r_sweep) {
    const auto& rep = result.row("fsa-l0", S, r).report;
    const double drop = clean - rep.test_accuracy;
    const char* verdict = drop < 0.02   ? "invisible"
                          : drop < 0.05 ? "subtle"
                          : drop < 0.15 ? "suspicious"
                                        : "obvious";
    table.row({std::to_string(r), std::to_string(rep.targets_hit) + "/4",
               std::to_string(rep.l0), eval::pct(rep.test_accuracy),
               eval::fmt(drop * 100.0, 1) + " pts", verdict});
  }
  table.print();
  std::printf(
      "\nWith no anchors the same 4 faults wreck the model; with ~1000 the damage\n"
      "is within noise of the clean model. Stealth is literally purchased with\n"
      "unlabeled data — the adversary never needs the training set (paper §3).\n");
  return 0;
}
