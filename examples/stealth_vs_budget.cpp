// stealth_vs_budget.cpp — how many camouflage images does stealth cost?
//
// The paper's central mechanism (§3, Table 4): the R − S "maintain" images
// act as anchors — constraints that pin the perturbed model to the
// original everywhere except the S designated faults. This example fixes
// S = 4 faults and sweeps the anchor budget, answering the operational
// question an adversary (or a defender sizing the risk) actually has:
// how much data must the attacker collect for the attack to stay hidden?
//
// Run from the repository root:  ./build/examples/stealth_vs_budget
#include <cstdio>

#include "eval/attack_bench.h"
#include "eval/table.h"

int main() {
  using namespace fsa;
  models::ModelZoo zoo;
  eval::AttackBench bench(zoo.digits(), zoo.cache_dir(), {"fc3"});
  const double clean = bench.clean_test_accuracy();
  std::printf("\nClean test accuracy: %s. Injecting S=4 faults with growing anchor sets.\n",
              eval::pct(clean).c_str());

  const std::int64_t S = 4;
  eval::Table table("stealth vs anchor budget (S=4 faults, digits, fc3)");
  table.header({"R (anchors = R-4)", "faults in", "l0", "test acc after", "drop", "verdict"});

  for (const std::int64_t r : {4L, 10L, 50L, 100L, 500L, 1000L}) {
    const core::AttackSpec spec = bench.spec(S, r, /*seed=*/777);
    const core::FaultSneakingResult res = bench.attack().run(spec);
    const double acc = bench.test_accuracy_with(res.delta);
    const double drop = clean - acc;
    const char* verdict = drop < 0.02   ? "invisible"
                          : drop < 0.05 ? "subtle"
                          : drop < 0.15 ? "suspicious"
                                        : "obvious";
    table.row({std::to_string(r), std::to_string(res.targets_hit) + "/4",
               std::to_string(res.l0), eval::pct(acc),
               eval::fmt(drop * 100.0, 1) + " pts", verdict});
    std::printf("[sweep] R=%lld: acc %s (drop %.1f pts)\n", static_cast<long long>(r),
                eval::pct(acc).c_str(), drop * 100.0);
  }
  table.print();
  std::printf(
      "\nWith no anchors the same 4 faults wreck the model; with ~1000 the damage\n"
      "is within noise of the clean model. Stealth is literally purchased with\n"
      "unlabeled data — the adversary never needs the training set (paper §3).\n");
  return 0;
}
