// fsa_cli.cpp — command-line driver for the fault sneaking attack library.
//
// Subcommands:
//   info                          model/accuracy overview
//   attack    --dataset digits --layers fc3 --s 2 --r 100 --norm l0
//             [--seed N] [--weights-only|--biases-only] [--save delta.bin]
//   campaign  --dataset digits --layers fc3 --delta delta.bin
//             [--injector laser|rowhammer]
//   audit     --dataset digits --layers fc3 --delta delta.bin
//
// The `attack` subcommand solves one instance and prints the scorecard;
// `campaign` lowers a saved δ to bit flips and simulates the injector;
// `audit` runs the defender-view weight audit on a saved δ.
#include <cstdio>
#include <string>

#include "eval/args.h"
#include "eval/attack_bench.h"
#include "eval/detect.h"
#include "eval/table.h"
#include "faultsim/campaign.h"
#include "tensor/serialize.h"

namespace {

using namespace fsa;

int usage() {
  std::fputs(
      "usage: fsa_cli <info|attack|campaign|audit> [options]\n"
      "  info\n"
      "  attack   --dataset digits|objects --layers fc3[,fc2...] --s N --r N\n"
      "           [--norm l0|l2|l1] [--seed N] [--rho X] [--c X]\n"
      "           [--weights-only] [--biases-only] [--save delta.bin] [--verbose]\n"
      "  campaign --dataset D --layers L --delta delta.bin [--injector laser|rowhammer]\n"
      "  audit    --dataset D --layers L --delta delta.bin\n",
      stderr);
  return 2;
}

std::vector<std::string> split_layers(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t comma = csv.find(',', begin);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > begin) out.push_back(csv.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return out;
}

struct Context {
  models::ModelZoo zoo;
  std::unique_ptr<eval::AttackBench> bench;
  models::ZooModel* model = nullptr;

  Context(const std::string& dataset, const std::string& layers_csv, bool weights, bool biases) {
    model = dataset == "objects" ? &zoo.objects() : &zoo.digits();
    bench = std::make_unique<eval::AttackBench>(*model, zoo.cache_dir(),
                                                split_layers(layers_csv), weights, biases);
  }
};

int cmd_info() {
  models::ModelZoo zoo;
  eval::Table table("models");
  table.header({"model", "test accuracy", "params", "fc3 params"});
  for (auto* m : {&zoo.digits(), &zoo.objects()}) {
    const auto mask = core::ParamMask::make(m->net, {"fc3"});
    table.row({m->name, eval::pct(m->test_accuracy), std::to_string(m->net.param_count()),
               std::to_string(mask.size())});
  }
  table.print();
  return 0;
}

int cmd_attack(const eval::Args& args) {
  args.expect_only({"dataset", "layers", "s", "r", "norm", "seed", "rho", "c", "weights-only",
                    "biases-only", "save", "verbose"});
  Context ctx(args.get("dataset", "digits"), args.get("layers", "fc3"),
              !args.has_flag("biases-only"), !args.has_flag("weights-only"));
  const std::int64_t s = args.get_int("s", 1);
  const std::int64_t r = args.get_int("r", 100);
  const core::AttackSpec spec = ctx.bench->spec(s, r, args.get_int("seed", 1));

  core::FaultSneakingConfig cfg;
  const std::string norm = args.get("norm", "l0");
  cfg.admm.norm = norm == "l2"   ? core::NormKind::kL2
                  : norm == "l1" ? core::NormKind::kL1
                                 : core::NormKind::kL0;
  cfg.admm.rho = args.get_double("rho", cfg.admm.rho);
  cfg.admm.c = args.get_double("c", cfg.admm.c);
  cfg.verbose = cfg.admm.verbose = args.has_flag("verbose");

  const core::FaultSneakingResult res = ctx.bench->attack().run(spec, cfg);
  const double acc = ctx.bench->test_accuracy_with(res.delta);

  eval::Table table("attack result (" + norm + ", " +
                    ctx.bench->attack().mask().describe() + ")");
  table.header({"metric", "value"})
      .row({"faults injected", std::to_string(res.targets_hit) + "/" + std::to_string(s)})
      .row({"anchors kept", std::to_string(res.maintained) + "/" + std::to_string(r - s)})
      .row({"l0", std::to_string(res.l0)})
      .row({"l2", eval::fmt(res.l2)})
      .row({"test acc before", eval::pct(ctx.bench->clean_test_accuracy())})
      .row({"test acc after", eval::pct(acc)})
      .row({"wall time", eval::fmt(res.seconds, 2) + " s"});
  table.print();

  if (const std::string path = args.get("save", ""); !path.empty()) {
    io::save_tensors(path, {res.delta});
    std::printf("delta saved to %s (load with `fsa_cli campaign --delta %s ...`)\n",
                path.c_str(), path.c_str());
  }
  return res.all_targets_hit ? 0 : 1;
}

Tensor load_delta(const eval::Args& args, const Context& ctx) {
  const std::string path = args.get("delta", "");
  if (path.empty()) throw std::invalid_argument("--delta is required");
  auto tensors = io::load_tensors(path);
  if (tensors.size() != 1 || tensors[0].numel() != ctx.bench->attack().mask().size())
    throw std::runtime_error("delta file does not match the selected attack surface");
  return tensors[0];
}

int cmd_campaign(const eval::Args& args) {
  args.expect_only({"dataset", "layers", "delta", "injector"});
  Context ctx(args.get("dataset", "digits"), args.get("layers", "fc3"), true, true);
  const Tensor delta = load_delta(args, ctx);

  const faultsim::MemoryLayout layout;
  const auto plan = faultsim::plan_bit_flips(ctx.bench->attack().theta0(), delta, layout);
  std::printf("plan: %lld params, %lld bit flips, %lld rows\n",
              static_cast<long long>(plan.params_modified),
              static_cast<long long>(plan.total_bit_flips),
              static_cast<long long>(plan.rows_touched));
  const std::string injector = args.get("injector", "laser");
  if (injector == "rowhammer") {
    Rng rng(7);
    const auto rep = faultsim::simulate_rowhammer(plan, faultsim::RowHammerParams{}, layout, rng);
    std::printf("rowhammer: %lld/%lld bits, %lld attempts, %lld massages, %.2f h, %s\n",
                static_cast<long long>(rep.bits_flipped),
                static_cast<long long>(rep.bits_requested),
                static_cast<long long>(rep.hammer_attempts),
                static_cast<long long>(rep.massages), rep.seconds / 3600.0,
                rep.success ? "complete" : "INCOMPLETE");
  } else {
    const auto rep = faultsim::simulate_laser(plan, faultsim::LaserParams{}, layout);
    std::printf("laser: %lld bits, %.2f h\n", static_cast<long long>(rep.bits_flipped),
                rep.seconds / 3600.0);
  }
  return 0;
}

int cmd_audit(const eval::Args& args) {
  args.expect_only({"dataset", "layers", "delta"});
  Context ctx(args.get("dataset", "digits"), args.get("layers", "fc3"), true, true);
  const Tensor delta = load_delta(args, ctx);
  Tensor after = ctx.bench->attack().theta0();
  after += delta;
  const eval::AuditReport rep = eval::audit_weights(ctx.bench->attack().theta0(), after);
  std::printf("audit: changed %s, max|dw| %.4f, mean shift %.5f, std ratio %.4f, KS %.4f\n",
              eval::pct(rep.changed_fraction).c_str(), rep.max_abs_change, rep.mean_shift,
              rep.std_ratio, rep.ks_statistic);
  std::printf("anomaly score: %.2f\n", eval::anomaly_score(rep));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const eval::Args args = eval::Args::parse(argc, argv);
    if (args.command() == "info") return cmd_info();
    if (args.command() == "attack") return cmd_attack(args);
    if (args.command() == "campaign") return cmd_campaign(args);
    if (args.command() == "audit") return cmd_audit(args);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fsa_cli: %s\n", e.what());
    return 2;
  }
}
