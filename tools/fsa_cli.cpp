// fsa_cli.cpp — command-line driver for the fault sneaking attack library.
//
// Subcommands:
//   info                          model/accuracy overview
//   methods                       list registered attack methods
//   backends                      list registered compute backends
//   injectors                     list registered fault injectors
//   defenses                      list registered defenses
//   attack    --dataset digits --layers fc3 --s 2 --r 100 --method fsa-l0
//             [--norm l0|l2|l1] [--backend reference|blocked|packed]
//             [--seed N] [--rho X] [--c X]
//             [--weights-only|--biases-only] [--save delta.bin]
//   sweep     --dataset digits --layers fc3 --method fsa-l0,gda
//             --s-list 1,2,4 --r-list 50,100 [--seeds 1,2] [--backend B]
//             [--with-campaign] [--injector I1,I2] [--shards K]
//             [--json out.json] [--csv out.csv] [--no-acc]
//   arena     --dataset digits --layers fc3 --method fsa-l0,fsa-l2-evasive
//             --defense checksum/64,range/201/0.10 --s-list 2 --r-list 100
//             [--seeds 1,2] [--with-campaign [--format bf16] ...]
//             [--json out.json] [--workers N ...]
//             | --run-shard manifest.json --shard I [--out result.json]
//   campaign  --dataset digits --layers fc3 --delta delta.bin
//             [--injector rowhammer,laser,clock-glitch] [--shards K]
//             [--seed N] [--manifest shards.json]
//             [--workers N [--job dir] [--retries R]]
//             | --run-shard manifest.json --shard I [--out result.json]
//   dist      run|reduce|status --job dir [--workers N] [--retries R]
//   audit     --dataset digits --layers fc3 --delta delta.bin
//
// `attack` solves one instance through the engine registry and prints the
// scorecard; `arena` crosses attack methods against deployed defenses
// (src/defense/, see docs/DEFENSE.md) and reduces the rows into the
// evasion frontier — `--defense` names parse strictly through the defense
// registry BEFORE any model loads; `sweep` expands method × S × R × seed
// and runs all instances
// concurrently on the thread pool (FSA_NUM_THREADS controls the worker
// count; results are identical for any value), and `--with-campaign`
// appends a hardware-campaign stage (δ → bit flips → sharded injector
// simulation) to every row; `campaign` lowers a saved δ to bit flips and
// runs the sharded campaign for each selected injector (campaign totals
// are bitwise identical for any --shards); `audit` runs the defender-view
// weight audit on a saved δ. `--backend` (default: FSA_BACKEND, else
// "blocked") selects the compute backend that every hot kernel routes
// through; `--injector` (default: FSA_INJECTOR, else per-command) selects
// fault injectors the same way — unknown names fail loudly listing the
// registry. `--injector-profile file.json` (default: FSA_INJECTOR_PROFILE)
// loads a calibration profile overriding injector cost-model parameters.
//
// Multi-process distribution (src/dist/, see docs/DIST.md): `--workers N`
// routes a campaign or sweep through a job directory — the coordinator
// writes a self-contained manifest, spawns N copies of this binary in
// `--run-shard` mode (one shard per child, bounded retries, per-shard
// logs), and reduces the shard results with the zero-drift reducer, so
// the reduced JSON is bitwise identical for ANY worker count. `dist
// run|reduce|status` operates on an existing job directory, which is the
// whole coordination protocol — put it on shared storage and run workers
// anywhere.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "backend/compute_backend.h"
#include "compile/compile.h"
#include "defense/defense.h"
#include "dist/jobs.h"
#include "dist/lease.h"
#include "dist/reducer.h"
#include "dist/serve.h"
#include "dist/worker_pool.h"
#include "serve/http.h"
#include "serve/service.h"
#include "serve/zoo.h"
#include "engine/arena.h"
#include "engine/attackers.h"
#include "engine/registry.h"
#include "engine/sweep.h"
#include "eval/args.h"
#include "eval/attack_bench.h"
#include "eval/detect.h"
#include "eval/table.h"
#include "faultsim/campaign.h"
#include "faultsim/profile.h"
#include "faultsim/quantize.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/serialize.h"

namespace {

using namespace fsa;

/// argv[0], for re-executing this binary as a shard worker.
const char* g_argv0 = "fsa_cli";

int usage() {
  std::fputs(
      "usage: fsa_cli"
      " <info|methods|backends|injectors|defenses|attack|sweep|arena|campaign|dist|serve|eval|"
      "audit> [options]\n"
      "  info\n"
      "  methods\n"
      "  backends\n"
      "  injectors\n"
      "  defenses\n"
      "  attack   --dataset digits|objects --layers fc3[,fc2...] --s N --r N\n"
      "           [--method fsa-l0|fsa-l2|fsa-l1|gda|sba] [--norm l0|l2|l1]\n"
      "           [--backend reference|blocked|packed|auto] [--seed N] [--rho X] [--c X]\n"
      "           [--weights-only|--biases-only] [--save delta.bin] [--verbose]\n"
      "  sweep    --dataset D --layers L --s-list 1,2,4 --r-list 50,100\n"
      "           [--method M1,M2,...] [--seeds 1,2,...] [--norm l0|l2|l1]\n"
      "           [--backend reference|blocked|packed|auto] [--compile on|off]\n"
      "           [--with-campaign] [--injector I1,I2,...] [--shards K]\n"
      "           [--injector-profile file.json]\n"
      "           [--with-defense] [--defense name[/gran[/slack]]]\n"
      "           [--weights-only|--biases-only] [--json out.json] [--csv out.csv]\n"
      "           [--no-acc] [--quiet]\n"
      "           [--workers N [--job dir] [--retries R]]\n"
      "           | --run-shard manifest.json --shard I [--out result.json]\n"
      "  arena    --dataset D --layers L --s-list 2 --r-list 100\n"
      "           [--method fsa-l0,fsa-l2,fsa-l0-evasive,fsa-l2-evasive]\n"
      "           [--defense checksum/64,range/201/0.10,canary/32,c1+c2]\n"
      "           [--seeds 1,2,...] [--backend B] [--compile on|off] [--acc]\n"
      "           [--with-campaign] [--injector I1,...] [--shards K] [--format f32|bf16|f16|int8]\n"
      "           [--weights-only|--biases-only] [--json out.json] [--csv out.csv] [--quiet]\n"
      "           [--workers N [--job dir] [--retries R]]\n"
      "           | --run-shard manifest.json --shard I [--out result.json]\n"
      "  campaign --dataset D --layers L --delta delta.bin\n"
      "           [--injector rowhammer|laser|clock-glitch,...] [--shards K]\n"
      "           [--seed N] [--manifest shards.json] [--injector-profile file.json]\n"
      "           [--workers N [--job dir] [--retries R]]\n"
      "           | --run-shard manifest.json --shard I [--out result.json]\n"
      "  dist     run    --job dir [--workers N] [--retries R] [--retry-backoff-ms MS]\n"
      "           serve  --job dir1[,dir2...] [--poll-ms MS] [--lease-expiry-ms MS]\n"
      "                  [--heartbeat-ms MS] [--once] [--max-shards N] [--quiet]\n"
      "           reduce --job dir\n"
      "           status --job dir [--json]\n"
      "  serve    [--port P] [--threads N] [--max-batch B] [--max-delay-ms MS]\n"
      "           [--max-queue Q] [--executors E] [--datasets digits[,objects]]\n"
      "           [--warm-layers fc3[,fc2...]] [--backend B] [--compile on|off]\n"
      "           [--once] [--quiet]\n"
      "  eval     --dataset D --layers L [--weights-only|--biases-only]\n"
      "           [--backend B] [--json out.json]\n"
      "  audit    --dataset D --layers L --delta delta.bin\n"
      "\n"
      "observability (docs/OBSERVABILITY.md): most commands also take\n"
      "  --trace [out.json]     span tracer on; Chrome-trace JSON written on exit\n"
      "  --metrics [out.json]   metric emission on; registry snapshot written on exit\n"
      "(FSA_TRACE / FSA_METRICS env enable collection without an output file;\n"
      " both are inherited by --workers shard children, which then write\n"
      " results/shard_NNNNN.telemetry.json sidecars merged into <job>/telemetry.json)\n",
      stderr);
  return 2;
}

/// Strictly positive integer option: present-but-zero (or negative) is an
/// error, not a silent default — `--shards 0` / `--workers 0` must fail
/// loudly before any model loads.
int positive_int(const eval::Args& args, const std::string& key, int fallback) {
  if (args.get(key, "").empty() && !args.has_flag(key)) return fallback;
  const auto v = args.get_int(key, fallback);
  if (v < 1)
    throw std::invalid_argument("--" + key + " must be >= 1, got " + args.get(key, "(none)"));
  return static_cast<int>(v);
}

/// Load the injector calibration profile, if one is selected:
/// --injector-profile wins, then FSA_INJECTOR_PROFILE. Re-registers the
/// profiled injectors so every later make_injector() — including the
/// sweep engine's campaign stage — uses the calibrated cost model; the
/// loaded document is embedded into campaign manifests so out-of-process
/// shard workers replay it exactly.
void apply_injector_profile(const eval::Args& args) {
  std::string path = args.get("injector-profile", "");
  if (path.empty())
    if (const char* env = std::getenv("FSA_INJECTOR_PROFILE"); env && env[0] != '\0') path = env;
  if (!path.empty()) faultsim::load_injector_profile_file(path);
}

/// Shard-worker options shared by campaign/sweep `--workers` mode and
/// `dist run`.
dist::RunJobOptions worker_options(const eval::Args& args, bool verbose) {
  dist::RunJobOptions opts;
  opts.workers = positive_int(args, "workers", 1);
  const auto retries = args.get_int("retries", 1);
  if (retries < 0) throw std::invalid_argument("--retries must be >= 0");
  opts.max_attempts = 1 + static_cast<int>(retries);
  const auto backoff = args.get_int("retry-backoff-ms", opts.retry_backoff_ms);
  if (backoff < 0) throw std::invalid_argument("--retry-backoff-ms must be >= 0");
  opts.retry_backoff_ms = static_cast<int>(backoff);
  opts.verbose = verbose;
  return opts;
}

/// Validate a worker-mode shard index against a manifest BEFORE anything
/// heavy (model load) happens.
int shard_index(const eval::Args& args, const eval::Json& manifest) {
  const int shards = static_cast<int>(manifest.get_int("shards", 0));
  if (shards < 1) throw std::invalid_argument("--run-shard: manifest has no valid shard count");
  const auto idx = args.get_int("shard", -1);
  if (idx < 0 || idx >= shards)
    throw std::invalid_argument("--shard " + args.get("shard", "(missing)") +
                                " out of the manifest's range [0, " + std::to_string(shards) +
                                ")");
  return static_cast<int>(idx);
}

/// Emit a shard result: --out (atomic, the JobDir contract) or stdout.
int emit_shard_result(const eval::Args& args, const eval::Json& result) {
  if (const std::string out = args.get("out", ""); !out.empty()) {
    dist::write_json_atomic(out, result);
    std::printf("shard result written to %s\n", out.c_str());
    // Metrics sidecar (FSA_METRICS inherited from the coordinator): a
    // registry snapshot NEXT TO the result — merged into the job's
    // telemetry.json, never into the result or the reduction.
    if (obs::metrics_enabled()) {
      const std::string suffix = ".json";
      const bool json_named = out.size() > suffix.size() &&
                              out.compare(out.size() - suffix.size(), suffix.size(), suffix) == 0;
      const std::string sidecar =
          (json_named ? out.substr(0, out.size() - suffix.size()) : out) + ".telemetry.json";
      dist::write_json_atomic(sidecar, obs::Registry::global().to_json());
      std::printf("telemetry sidecar written to %s\n", sidecar.c_str());
    }
  } else {
    std::printf("%s\n", result.dump(2).c_str());
  }
  return 0;
}

/// Job directory for --workers mode: --job resumes/creates at a chosen
/// path; otherwise a per-process temp dir (removed again on success).
std::string job_dir_root(const eval::Args& args, const std::string& kind, bool& temporary) {
  if (const std::string dir = args.get("job", ""); !dir.empty()) {
    temporary = false;
    return dir;
  }
  temporary = true;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("fsa_" + kind + "_job_" + std::to_string(::getpid()));
  return dir.string();
}

/// Default injector list: --injector wins, then FSA_INJECTOR, then
/// `fallback`. Names are validated against the registry (throws listing
/// the known injectors — same strict style as --backend).
std::vector<std::string> injector_list(const eval::Args& args, const std::string& fallback) {
  const char* env = std::getenv("FSA_INJECTOR");
  const std::string def = env && env[0] != '\0' ? env : fallback;
  std::vector<std::string> names = args.get_list("injector", def);
  for (const auto& name : names) (void)faultsim::make_injector(name);
  return names;
}

/// Weights/biases selection with conflict detection: `--weights-only
/// --biases-only` would silently select nothing, so it is an error.
std::pair<bool, bool> surface_flags(const eval::Args& args) {
  const bool weights_only = args.has_flag("weights-only");
  const bool biases_only = args.has_flag("biases-only");
  if (weights_only && biases_only)
    throw std::invalid_argument(
        "--weights-only and --biases-only conflict (omit both to attack weights AND biases)");
  return {!biases_only, !weights_only};
}

/// Select the compute backend for this invocation. Unknown names throw
/// listing the registered backends — same strict style as --norm/--dataset.
void select_backend(const eval::Args& args) {
  if (const std::string name = args.get("backend", ""); !name.empty())
    backend::set_backend(name);
}

/// Select the forward-path compiler for this invocation: --compile on|off
/// wins over FSA_COMPILE. Also exported into the environment so re-exec'd
/// shard workers (`--workers N`) inherit the choice — the sweep manifest
/// pins it too, but export keeps single-shot children consistent.
void select_compile(const eval::Args& args) {
  const std::string mode = args.get("compile", "");
  if (mode.empty()) return;
  if (mode != "on" && mode != "off")
    throw std::invalid_argument("unknown --compile \"" + mode + "\" (expected on or off)");
  compile::set_enabled(mode == "on");
  setenv("FSA_COMPILE", mode.c_str(), 1);
}

/// Output paths for the end-of-run observability flush (empty = no flush).
std::string g_trace_path;    // NOLINT
std::string g_metrics_path;  // NOLINT

/// Turn trace/metrics emission on for this invocation: `--trace [path]`
/// enables the span tracer and writes a Chrome-trace JSON (Perfetto /
/// chrome://tracing) on exit; `--metrics [path]` enables metric emission
/// and dumps a registry snapshot the same way. Both are exported into the
/// environment (FSA_TRACE / FSA_METRICS) so re-exec'd shard workers
/// inherit the choice — a worker with FSA_METRICS on writes a
/// `telemetry.json` sidecar next to its shard result, merged per job,
/// never into reduced.json. Env-only activation (no flag) enables
/// collection without an output file.
void select_observability(const eval::Args& args) {
  if (args.has_flag("trace") || !args.get("trace", "").empty()) {
    g_trace_path = args.get("trace", "trace.json");
    obs::set_trace_enabled(true);
    setenv("FSA_TRACE", "on", 1);
  }
  if (args.has_flag("metrics") || !args.get("metrics", "").empty()) {
    g_metrics_path = args.get("metrics", "metrics.json");
    obs::set_metrics_enabled(true);
    setenv("FSA_METRICS", "on", 1);
  }
}

/// Flush requested observability artifacts after the command ran.
void flush_observability() {
  if (!g_trace_path.empty()) {
    obs::write_chrome_trace(g_trace_path);
    std::printf("trace written to %s (%zu span(s); load in Perfetto or chrome://tracing)\n",
                g_trace_path.c_str(), obs::span_count());
  }
  if (!g_metrics_path.empty()) {
    dist::write_json_atomic(g_metrics_path, obs::Registry::global().to_json());
    std::printf("metrics written to %s\n", g_metrics_path.c_str());
  }
}

/// Map --norm (validated) and --method onto a registry key. --method wins;
/// --norm is the historical spelling for the fsa variants.
std::string method_name(const eval::Args& args) {
  const std::string norm = args.get("norm", "");
  if (!norm.empty() && norm != "l0" && norm != "l2" && norm != "l1")
    throw std::invalid_argument("unknown --norm \"" + norm + "\" (expected l0, l2 or l1)");
  return args.get("method", "fsa-" + (norm.empty() ? "l0" : norm));
}

struct Context {
  models::ModelZoo zoo;
  std::unique_ptr<eval::AttackBench> bench;
  models::ZooModel* model = nullptr;

  Context(const std::string& dataset, const std::string& layers_csv, bool weights, bool biases) {
    if (dataset != "digits" && dataset != "objects")
      throw std::invalid_argument("unknown --dataset \"" + dataset +
                                  "\" (expected digits or objects)");
    model = dataset == "objects" ? &zoo.objects() : &zoo.digits();
    bench = std::make_unique<eval::AttackBench>(*model, zoo.cache_dir(),
                                                eval::split_csv(layers_csv), weights, biases);
  }
};

int cmd_info() {
  models::ModelZoo zoo;
  eval::Table table("models");
  table.header({"model", "test accuracy", "params", "fc3 params"});
  for (auto* m : {&zoo.digits(), &zoo.objects()}) {
    const auto mask = core::ParamMask::make(m->net, {"fc3"});
    table.row({m->name, eval::pct(m->test_accuracy), std::to_string(m->net.param_count()),
               std::to_string(mask.size())});
  }
  table.print();
  return 0;
}

int cmd_methods() {
  std::printf("registered attack methods:\n");
  for (const auto& name : engine::attacker_names()) std::printf("  %s\n", name.c_str());
  return 0;
}

int cmd_backends() {
  // Resolve FSA_BACKEND defensively: this is the very command a user runs
  // to discover valid names, so a typo'd env var must not suppress the
  // listing — print the names, then report the bad selection.
  std::string current, bad_env;
  try {
    current = backend::active_name();
  } catch (const std::exception& e) {
    bad_env = e.what();
  }
  std::printf("registered compute backends (* = active):\n");
  for (const auto& name : backend::backend_names())
    std::printf("  %s%s\n", name.c_str(), name == current ? " *" : "");
  if (!bad_env.empty()) {
    std::fprintf(stderr, "fsa_cli: %s\n", bad_env.c_str());
    return 2;
  }
  return 0;
}

int cmd_injectors() {
  std::printf("registered fault injectors:\n");
  for (const auto& name : faultsim::injector_names()) std::printf("  %s\n", name.c_str());
  return 0;
}

int cmd_defenses() {
  std::printf("registered defenses (--defense name[/granularity[/slack]], + composes):\n");
  for (const auto& name : defense::defense_names()) std::printf("  %s\n", name.c_str());
  return 0;
}

/// The attacker for one CLI invocation: fsa variants honor --rho/--c/
/// --verbose solver overrides; everything else comes from the registry.
std::shared_ptr<const engine::Attacker> cli_attacker(const eval::Args& args,
                                                     const std::string& method) {
  if (method.rfind("fsa-", 0) == 0 && engine::has_attacker(method)) {
    core::FaultSneakingConfig cfg;
    cfg.admm.norm = method == "fsa-l2"   ? core::NormKind::kL2
                    : method == "fsa-l1" ? core::NormKind::kL1
                                         : core::NormKind::kL0;
    cfg.admm.rho = args.get_double("rho", cfg.admm.rho);
    cfg.admm.c = args.get_double("c", cfg.admm.c);
    cfg.verbose = cfg.admm.verbose = args.has_flag("verbose");
    return std::make_shared<engine::FsaAttacker>(cfg);
  }
  return engine::make_attacker(method);  // throws with the known-name list
}

int cmd_attack(const eval::Args& args) {
  args.expect_only({"dataset", "layers", "s", "r", "method", "norm", "backend", "seed", "rho",
                    "c", "weights-only", "biases-only", "save", "verbose", "trace", "metrics"});
  select_backend(args);
  select_observability(args);
  const auto [weights, biases] = surface_flags(args);
  const std::string method = method_name(args);
  const auto attacker = cli_attacker(args, method);

  Context ctx(args.get("dataset", "digits"), args.get("layers", "fc3"), weights, biases);
  const std::int64_t s = args.get_int("s", 1);
  const std::int64_t r = args.get_int("r", 100);
  const core::AttackSpec spec = ctx.bench->spec(s, r, args.get_int("seed", 1));

  backend::active().begin_attribution();
  engine::AttackReport rep = attacker->run(ctx.model->net, ctx.bench->attack().mask(), spec);
  rep.backend = backend::active().attribution();
  const double acc = ctx.bench->test_accuracy_with(rep.delta);

  eval::Table table("attack result (" + attacker->name() + ", " + rep.surface + ")");
  table.header({"metric", "value"})
      .row({"backend", rep.backend})
      .row({"faults injected", std::to_string(rep.targets_hit) + "/" + std::to_string(s)})
      .row({"anchors kept", std::to_string(rep.maintained) + "/" + std::to_string(r - s)})
      .row({"l0", std::to_string(rep.l0)})
      .row({"l2", eval::fmt(rep.l2)})
      .row({"test acc before", eval::pct(ctx.bench->clean_test_accuracy())})
      .row({"test acc after", eval::pct(acc)})
      .row({"wall time", eval::fmt(rep.seconds, 2) + " s"});
  table.print();

  if (const std::string path = args.get("save", ""); !path.empty()) {
    io::save_tensors(path, {rep.delta});
    std::printf("delta saved to %s (load with `fsa_cli campaign --delta %s ...`)\n",
                path.c_str(), path.c_str());
  }
  return rep.all_targets_hit ? 0 : 1;
}

/// Worker mode: solve one shard of a sweep manifest and emit the result.
/// Index and manifest validation happen before the model loads.
int cmd_sweep_run_shard(const eval::Args& args) {
  const eval::Json manifest = dist::read_json_file(args.get("run-shard", ""));
  const int shard = shard_index(args, manifest);
  if (const std::string be = manifest.get_string("backend", ""); !be.empty())
    backend::set_backend(be);  // the coordinator's backend, not this env's

  const std::string dataset = manifest.get_string("dataset", "digits");
  if (dataset != "digits" && dataset != "objects")
    throw std::invalid_argument("sweep manifest: unknown dataset \"" + dataset + "\"");
  models::ModelZoo zoo;
  models::ZooModel& model = dataset == "objects" ? zoo.objects() : zoo.digits();
  engine::SweepRunner runner(model, zoo.cache_dir(), /*verbose=*/true);  // → shard log
  return emit_shard_result(args, dist::run_sweep_shard(manifest, shard, runner));
}

/// Coordinator mode: lay the sweep out as a job directory, fan N copies of
/// this binary out over its shards, and reduce. The reduced JSON is
/// canonical — bitwise identical for any --workers.
int cmd_sweep_workers(const eval::Args& args, const engine::Sweep& sweep,
                      const std::string& dataset, const dist::RunJobOptions& opts) {
  const std::vector<engine::SweepSpec> specs = sweep.build();

  // Load the model and warm every surface's feature cache BEFORE spawning:
  // workers read the shared FSA_CACHE_DIR, and N processes racing to train
  // the same model (or write the same cache file) must never happen.
  models::ModelZoo zoo;
  models::ZooModel& model = dataset == "objects" ? zoo.objects() : zoo.digits();
  engine::SweepRunner warm(model, zoo.cache_dir(), /*verbose=*/false);
  for (const engine::SweepSpec& s : specs) (void)warm.bench(s.layers, s.weights, s.biases);

  bool temporary = false;
  const std::string dir = job_dir_root(args, "sweep", temporary);
  // Resume only a job whose manifest matches THIS request byte-for-byte;
  // a leftover directory for a different sweep errors instead of serving
  // stale rows.
  const dist::JobDir job = dist::open_or_create_job(
      dir, "sweep", dist::sweep_manifest(dataset, backend::active_name(), specs));
  // Temp-dir jobs go through run_temp_job: removed on success, retained
  // AND named in the error on permanent failure (the logs are the trail).
  const eval::Json reduced = temporary ? dist::run_temp_job(job, dist::self_exe(g_argv0), opts)
                                       : dist::run_job(job, dist::self_exe(g_argv0), opts);

  // Rebuild rows for the human-facing table; the canonical artifact is the
  // reduced JSON itself.
  engine::SweepResult result;
  result.model = model.name;
  result.backend = reduced.get_string("backend", backend::active_name());
  result.workers = opts.workers;
  for (const eval::Json& row : reduced.at("rows").items()) {
    engine::SweepRow r;
    r.report = engine::AttackReport::from_json(row);
    const auto idx = static_cast<std::size_t>(row.get_int("index", 0));
    if (idx < specs.size()) r.spec = specs[idx];
    result.rows.push_back(std::move(r));
  }
  result.table("sweep (" + dataset + ", " + std::to_string(opts.workers) + " worker process(es))")
      .print();
  if (const std::string path = args.get("json", ""); !path.empty()) {
    dist::write_json_atomic(path, reduced);
    std::printf("reduced json written to %s\n", path.c_str());
  }
  if (const std::string path = args.get("csv", ""); !path.empty())
    result.table("sweep").write_csv(path);
  if (!temporary) std::printf("job directory: %s\n", job.path().c_str());

  for (const auto& row : result.rows)
    if (!row.report.all_targets_hit) return 1;
  return 0;
}

int cmd_sweep(const eval::Args& args) {
  args.expect_only({"dataset", "layers", "method", "norm", "backend", "compile", "s-list",
                    "r-list", "seeds", "weights-only", "biases-only", "json", "csv", "no-acc",
                    "quiet", "with-campaign", "injector", "shards", "injector-profile",
                    "with-defense", "defense", "workers", "retries", "retry-backoff-ms", "job",
                    "run-shard", "shard", "out", "trace", "metrics"});
  apply_injector_profile(args);
  select_observability(args);
  if (!args.get("run-shard", "").empty()) {
    if (!args.get("workers", "").empty())
      throw std::invalid_argument("--run-shard (worker mode) conflicts with --workers");
    return cmd_sweep_run_shard(args);
  }
  select_backend(args);
  select_compile(args);
  const auto [weights, biases] = surface_flags(args);

  // Flag validation (campaign config and worker counts included) runs
  // BEFORE the model zoo loads: a typo must fail in milliseconds, not
  // after a model train.
  const bool dist_mode = !args.get("workers", "").empty() || args.has_flag("workers");
  const dist::RunJobOptions opts = worker_options(args, /*verbose=*/!args.has_flag("quiet"));
  engine::Sweep sweep;
  sweep.methods(args.get_list("method", method_name(args)))
      .layers(args.get_list("layers", "fc3"))
      .s_values(args.get_int_list("s-list", "1"))
      .r_values(args.get_int_list("r-list", "100"))
      .seeds(args.get_u64_list("seeds", "1"))
      .measure_accuracy(!args.has_flag("no-acc"));
  if (!weights) sweep.biases_only();
  if (!biases) sweep.weights_only();
  if (args.has_flag("with-campaign")) {
    engine::CampaignConfig cfg;
    cfg.injectors = injector_list(args, "rowhammer");
    cfg.shards = positive_int(args, "shards", 1);
    sweep.with_campaign(cfg);
  } else if (!args.get("injector", "").empty() || !args.get("shards", "").empty()) {
    throw std::invalid_argument("--injector/--shards require --with-campaign (sweep)");
  }
  // Deploy one guard against every row's δ. parse_defense is strict (it
  // builds the guard through the registry), so a typo'd name or malformed
  // granularity fails here — before any model loads.
  if (args.has_flag("with-defense") || !args.get("defense", "").empty()) {
    sweep.with_defense(defense::parse_defense(args.get("defense", "range")));
  }

  const std::string dataset = args.get("dataset", "digits");
  if (dataset != "digits" && dataset != "objects")
    throw std::invalid_argument("unknown --dataset \"" + dataset +
                                "\" (expected digits or objects)");
  if (dist_mode) return cmd_sweep_workers(args, sweep, dataset, opts);

  models::ModelZoo zoo;
  models::ZooModel& model = dataset == "objects" ? zoo.objects() : zoo.digits();

  engine::SweepRunner runner(model, zoo.cache_dir(), /*verbose=*/!args.has_flag("quiet"));
  const engine::SweepResult result = runner.run(sweep);

  result.table("sweep (" + dataset + ", " + std::to_string(result.workers) + " workers)").print();
  if (const std::string path = args.get("json", ""); !path.empty()) {
    result.write_json(path);
    std::printf("json report written to %s\n", path.c_str());
  }
  if (const std::string path = args.get("csv", ""); !path.empty())
    result.table("sweep").write_csv(path);

  for (const auto& row : result.rows)
    if (!row.report.all_targets_hit) return 1;
  return 0;
}

/// Render the reduced arena document's evasion frontier (one line per
/// method × defense pairing).
void print_arena_frontier(const eval::Json& reduced) {
  eval::Table table("evasion frontier (method × defense)");
  table.header({"method", "defense", "rows", "detect", "evade", "mean l0", "mean l2",
                "overhead B", "verify cost"});
  for (const eval::Json& e : reduced.at("frontier").items())
    table.row({e.get_string("method", ""), e.get_string("defense", ""),
               std::to_string(e.get_int("rows", 0)), eval::pct(e.get_number("detect_rate", 0.0)),
               eval::pct(e.get_number("evasion_rate", 0.0)),
               eval::fmt(e.get_number("mean_l0", 0.0), 1), eval::fmt(e.get_number("mean_l2", 0.0)),
               std::to_string(e.get_int("overhead_bytes", 0)),
               std::to_string(e.get_int("verify_cost", 0))});
  table.print();
}

/// `arena`: cross attack methods against deployed defenses and reduce the
/// rows into the evasion frontier. All three modes — in-process,
/// `--workers` coordinator, `--run-shard` worker — funnel through the
/// arena reducer, so the reduced JSON (rows AND frontier) is
/// byte-identical for any worker or thread count. Exit code is 0 when the
/// grid ran: a detected or incomplete attack is a data point on the
/// frontier, not a CLI failure.
int cmd_arena(const eval::Args& args) {
  args.expect_only({"dataset", "layers", "method", "defense", "backend", "compile", "s-list",
                    "r-list", "seeds", "weights-only", "biases-only", "acc", "json", "csv",
                    "quiet", "with-campaign", "injector", "shards", "format", "injector-profile",
                    "workers", "retries", "retry-backoff-ms", "job", "run-shard", "shard", "out",
                    "trace", "metrics"});
  apply_injector_profile(args);
  select_observability(args);
  if (!args.get("run-shard", "").empty()) {
    if (!args.get("workers", "").empty())
      throw std::invalid_argument("--run-shard (worker mode) conflicts with --workers");
    return cmd_sweep_run_shard(args);  // kind-agnostic: the manifest says "arena"
  }
  select_backend(args);
  select_compile(args);
  const auto [weights, biases] = surface_flags(args);

  // The whole grid — methods, defenses, campaign config, worker counts —
  // validates BEFORE the model zoo loads: a typo'd defense spelling must
  // fail in milliseconds, not after a model train.
  engine::ArenaConfig cfg;
  cfg.methods = args.get_list("method", "fsa-l0,fsa-l2");
  for (const std::string& d : args.get_list("defense", "checksum,range"))
    cfg.defenses.push_back(defense::parse_defense(d));
  cfg.layer_sets = {eval::split_csv(args.get("layers", "fc3"))};
  cfg.weights = weights;
  cfg.biases = biases;
  cfg.sr_pairs.clear();
  for (const std::int64_t s : args.get_int_list("s-list", "2"))
    for (const std::int64_t r : args.get_int_list("r-list", "100")) cfg.sr_pairs.emplace_back(s, r);
  cfg.seeds = args.get_u64_list("seeds", "1");
  cfg.measure_accuracy = args.has_flag("acc");
  if (args.has_flag("with-campaign")) {
    engine::CampaignConfig camp;
    camp.injectors = injector_list(args, "rowhammer");
    camp.shards = positive_int(args, "shards", 1);
    if (const std::string f = args.get("format", ""); !f.empty())
      camp.format = faultsim::format_from_name(f);
    cfg.campaign = camp;
  } else if (!args.get("injector", "").empty() || !args.get("shards", "").empty() ||
             !args.get("format", "").empty()) {
    throw std::invalid_argument("--injector/--shards/--format require --with-campaign (arena)");
  }
  const std::vector<engine::SweepSpec> specs = engine::arena_specs(cfg);

  const bool dist_mode = !args.get("workers", "").empty() || args.has_flag("workers");
  const dist::RunJobOptions opts = worker_options(args, /*verbose=*/!args.has_flag("quiet"));
  const std::string dataset = args.get("dataset", "digits");
  if (dataset != "digits" && dataset != "objects")
    throw std::invalid_argument("unknown --dataset \"" + dataset +
                                "\" (expected digits or objects)");

  models::ModelZoo zoo;
  models::ZooModel& model = dataset == "objects" ? zoo.objects() : zoo.digits();
  const eval::Json manifest = dist::arena_manifest(dataset, backend::active_name(), specs);

  eval::Json reduced;
  std::string job_path;
  if (dist_mode) {
    // Warm every surface's feature cache BEFORE spawning: workers share
    // FSA_CACHE_DIR, and N processes must never race to train one model.
    engine::SweepRunner warm(model, zoo.cache_dir(), /*verbose=*/false);
    for (const engine::SweepSpec& s : specs) (void)warm.bench(s.layers, s.weights, s.biases);
    bool temporary = false;
    const std::string dir = job_dir_root(args, "arena", temporary);
    const dist::JobDir job = dist::open_or_create_job(dir, "arena", manifest);
    reduced = temporary ? dist::run_temp_job(job, dist::self_exe(g_argv0), opts)
                        : dist::run_job(job, dist::self_exe(g_argv0), opts);
    if (!temporary) job_path = job.path();
  } else {
    // In-process: solve the whole grid on the thread pool, then push the
    // rows through the SAME arena reducer a job directory uses — the
    // reduced JSON matches any --workers run byte for byte.
    engine::SweepRunner runner(model, zoo.cache_dir(), /*verbose=*/!args.has_flag("quiet"));
    const engine::SweepResult result = runner.run(specs);
    std::vector<std::size_t> indices(specs.size());
    for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
    eval::Json shard = eval::Json::object();
    shard.set("kind", eval::Json::string("arena"));
    shard.set("shard", eval::Json::number(static_cast<std::int64_t>(0)));
    shard.set("rows", dist::sweep_rows_json(result, indices));
    reduced = dist::make_reducer("arena")->reduce(manifest, {shard});
  }

  // Rebuild the row table for the human; the canonical artifact is the
  // reduced JSON itself.
  engine::SweepResult view;
  view.model = model.name;
  view.backend = reduced.get_string("backend", backend::active_name());
  view.workers = dist_mode ? opts.workers : 1;
  for (const eval::Json& row : reduced.at("rows").items()) {
    engine::SweepRow r;
    r.report = engine::AttackReport::from_json(row);
    const auto idx = static_cast<std::size_t>(row.get_int("index", 0));
    if (idx < specs.size()) r.spec = specs[idx];
    view.rows.push_back(std::move(r));
  }
  view.table("arena (" + dataset + ", " + std::to_string(specs.size()) + " cell(s))").print();
  print_arena_frontier(reduced);

  if (const std::string path = args.get("json", ""); !path.empty()) {
    dist::write_json_atomic(path, reduced);
    std::printf("reduced json written to %s\n", path.c_str());
  }
  if (const std::string path = args.get("csv", ""); !path.empty())
    view.table("arena").write_csv(path);
  if (!job_path.empty()) std::printf("job directory: %s\n", job_path.c_str());
  return 0;
}

Tensor load_delta(const eval::Args& args, const Context& ctx) {
  const std::string path = args.get("delta", "");
  if (path.empty()) throw std::invalid_argument("--delta is required");
  auto tensors = io::load_tensors(path);
  if (tensors.size() != 1 || tensors[0].numel() != ctx.bench->attack().mask().size())
    throw std::runtime_error("delta file does not match the selected attack surface");
  return tensors[0];
}

void print_campaign_line(const std::string& name, const faultsim::CampaignReport& rep,
                         double estimate) {
  std::printf("%s: %lld/%lld bits, %lld attempts, %lld massages, %.2f h (est %.2f h), %s\n",
              name.c_str(), static_cast<long long>(rep.bits_flipped),
              static_cast<long long>(rep.bits_requested),
              static_cast<long long>(rep.attempts), static_cast<long long>(rep.massages),
              rep.seconds / 3600.0, estimate / 3600.0,
              rep.success ? "complete" : "INCOMPLETE");
}

/// Worker mode: simulate one shard of a campaign manifest. Needs no model,
/// no δ, no dataset — the manifest is self-contained.
int cmd_campaign_run_shard(const eval::Args& args) {
  const eval::Json manifest = dist::read_json_file(args.get("run-shard", ""));
  const int shard = shard_index(args, manifest);
  return emit_shard_result(args, dist::run_campaign_shard(manifest, shard));
}

int cmd_campaign(const eval::Args& args) {
  args.expect_only({"dataset", "layers", "delta", "injector", "shards", "seed", "manifest",
                    "injector-profile", "workers", "retries", "retry-backoff-ms", "job",
                    "run-shard", "shard", "out", "trace", "metrics"});
  apply_injector_profile(args);
  select_observability(args);
  if (!args.get("run-shard", "").empty()) {
    if (!args.get("workers", "").empty())
      throw std::invalid_argument("--run-shard (worker mode) conflicts with --workers");
    return cmd_campaign_run_shard(args);
  }
  // Validate the injector selection and all counts BEFORE touching the
  // model zoo: a typo must fail in milliseconds, not after a model train.
  const std::vector<std::string> injectors = injector_list(args, "laser");
  const bool dist_mode = !args.get("workers", "").empty() || args.has_flag("workers");
  const dist::RunJobOptions opts = worker_options(args, /*verbose=*/true);
  // In dist mode an unspecified --shards defaults to the worker count so
  // every process has work; totals are shard-count invariant either way.
  const int shards = positive_int(args, "shards", dist_mode ? opts.workers : 1);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));
  const faultsim::CampaignRunner runner(shards, seed);

  Context ctx(args.get("dataset", "digits"), args.get("layers", "fc3"), true, true);
  const Tensor delta = load_delta(args, ctx);

  const faultsim::MemoryLayout layout;
  const auto plan = faultsim::plan_bit_flips(ctx.bench->attack().theta0(), delta, layout);
  std::printf("plan: %lld params, %lld bit flips, %lld rows (%d shard(s), seed %llu)\n",
              static_cast<long long>(plan.params_modified),
              static_cast<long long>(plan.total_bit_flips),
              static_cast<long long>(plan.rows_touched), shards,
              static_cast<unsigned long long>(seed));

  if (const std::string path = args.get("manifest", ""); !path.empty()) {
    // Shard manifest for out-of-process execution (first selected injector).
    const faultsim::CampaignPlanner planner(injectors.front(), shards, seed);
    dist::write_json_atomic(path, planner.manifest(plan, layout));
    std::printf("shard manifest written to %s\n", path.c_str());
  }

  bool all_complete = true;
  if (dist_mode) {
    // One job directory per injector; shards run in child processes. The
    // reduced totals are bitwise identical to the in-process path.
    bool temporary = false;
    const std::string root = job_dir_root(args, "campaign", temporary);
    for (const std::string& name : injectors) {
      const std::string dir =
          injectors.size() == 1 ? root : (std::filesystem::path(root) / name).string();
      const faultsim::CampaignPlanner planner(name, shards, seed);
      const dist::JobDir job =
          dist::open_or_create_job(dir, "campaign", planner.manifest(plan, layout));
      // Temp-dir jobs: removed on success, retained and named in the
      // error on permanent failure (per-injector sub-jobs individually).
      const eval::Json reduced = temporary ? dist::run_temp_job(job, dist::self_exe(g_argv0), opts)
                                           : dist::run_job(job, dist::self_exe(g_argv0), opts);
      const faultsim::CampaignReport rep =
          faultsim::CampaignReport::from_json(reduced.at("report"));
      print_campaign_line(name, rep, faultsim::make_injector(name)->plan_cost(plan, layout));
      all_complete = all_complete && rep.success;
    }
    // A worker failure throws out of run_temp_job naming the retained
    // directory; reaching here means every shard ran and the per-injector
    // temp sub-jobs are already gone — sweep the (now empty) root too.
    if (temporary)
      std::filesystem::remove_all(root);
    else
      std::printf("job directory: %s\n", root.c_str());
    return all_complete ? 0 : 1;
  }

  for (const std::string& name : injectors) {
    const faultsim::InjectorPtr injector = faultsim::make_injector(name);
    const double estimate = injector->plan_cost(plan, layout);
    const faultsim::CampaignReport rep = runner.run(*injector, plan, layout);
    print_campaign_line(name, rep, estimate);
    all_complete = all_complete && rep.success;
  }
  return all_complete ? 0 : 1;
}

/// `dist run|serve|reduce|status --job dir`: operate on an existing job
/// directory — the whole coordination protocol lives in its files.
int cmd_dist(const eval::Args& args) {
  const std::string mode = args.command();
  if (mode != "run" && mode != "serve" && mode != "reduce" && mode != "status") return usage();

  if (mode == "serve") {
    // serve opens its job dirs itself (they may not even exist yet — a
    // daemon polls until another process lays them out).
    args.expect_only({"job", "poll-ms", "lease-expiry-ms", "heartbeat-ms", "once", "max-shards",
                      "quiet", "trace", "metrics"});
    select_observability(args);
    dist::ServeOptions opts;
    opts.jobs = args.get_list("job", "");
    if (opts.jobs.empty())
      throw std::invalid_argument("dist serve: --job <dir1[,dir2...]> is required");
    opts.poll_ms = positive_int(args, "poll-ms", opts.poll_ms);
    opts.lease_expiry_ms = positive_int(args, "lease-expiry-ms", opts.lease_expiry_ms);
    opts.heartbeat_ms = positive_int(args, "heartbeat-ms", 0);
    opts.once = args.has_flag("once");
    opts.max_shards = positive_int(args, "max-shards", 0);
    opts.verbose = !args.has_flag("quiet");
    const dist::ServeReport rep = dist::serve(opts, dist::self_exe(g_argv0));
    std::printf("serve: %d shard(s) run, %d failed, %d lease(s) reclaimed, %d job(s) reduced%s\n",
                rep.shards_run, rep.shards_failed, rep.shards_reclaimed, rep.jobs_reduced,
                rep.drained ? " (drained on signal)" : "");
    return rep.shards_failed == 0 ? 0 : 1;
  }

  args.expect_only({"job", "workers", "retries", "retry-backoff-ms", "json", "trace", "metrics"});
  select_observability(args);
  const std::string dir = args.get("job", "");
  if (dir.empty()) throw std::invalid_argument("dist " + mode + ": --job <dir> is required");
  const dist::JobDir job = dist::JobDir::open(dir);

  if (mode == "status") {
    const dist::JobStatus st = job.status();
    if (args.has_flag("json")) {
      // Structured status for scripts/dashboards: everything the human
      // rendering shows, plus lease owners with heartbeat ages.
      eval::Json doc = eval::Json::object();
      doc.set("job", eval::Json::string(job.path()));
      doc.set("kind", eval::Json::string(job.kind()));
      doc.set("shards", eval::Json::number(static_cast<std::int64_t>(st.shards)));
      eval::Json done = eval::Json::array();
      for (const int s : st.done) done.push_back(eval::Json::number(static_cast<std::int64_t>(s)));
      doc.set("done", std::move(done));
      eval::Json missing = eval::Json::array();
      for (const int s : st.missing)
        missing.push_back(eval::Json::number(static_cast<std::int64_t>(s)));
      doc.set("missing", std::move(missing));
      doc.set("reduced", eval::Json::boolean(st.reduced));
      std::error_code ec;
      doc.set("telemetry",
              eval::Json::boolean(std::filesystem::is_regular_file(job.telemetry_path(), ec)));
      const std::int64_t now = dist::lease_now_ms();
      eval::Json leases = eval::Json::array();
      for (const auto& [shard, lease] : dist::list_leases(job)) {
        eval::Json l = eval::Json::object();
        l.set("shard", eval::Json::number(static_cast<std::int64_t>(shard)));
        l.set("owner", eval::Json::string(lease.owner));
        l.set("host", eval::Json::string(lease.host));
        l.set("pid", eval::Json::number(static_cast<std::int64_t>(lease.pid)));
        l.set("heartbeat_age_ms",
              eval::Json::number(std::max<std::int64_t>(0, now - lease.heartbeat_ms)));
        leases.push_back(std::move(l));
      }
      doc.set("leases", std::move(leases));
      std::printf("%s\n", doc.dump(2).c_str());
      return st.missing.empty() ? 0 : 1;
    }
    std::printf("job %s: kind %s, %d shard(s), %zu done, %zu missing, %s\n", job.path().c_str(),
                job.kind().c_str(), st.shards, st.done.size(), st.missing.size(),
                st.reduced ? "reduced" : "not reduced");
    if (!st.missing.empty()) {
      std::string missing;
      for (int s : st.missing) missing += (missing.empty() ? "" : ",") + std::to_string(s);
      std::printf("missing shards: %s\n", missing.c_str());
    }
    const std::int64_t now = dist::lease_now_ms();
    for (const auto& [shard, lease] : dist::list_leases(job))
      std::printf("lease: shard %d held by %s (heartbeat %lld ms ago)\n", shard,
                  lease.owner.empty() ? "(corrupt lease)" : lease.owner.c_str(),
                  static_cast<long long>(std::max<std::int64_t>(0, now - lease.heartbeat_ms)));
    return st.missing.empty() ? 0 : 1;
  }

  if (mode == "reduce") {
    const eval::Json reduced = dist::reduce_job(job);  // throws listing missing shards
    job.write_reduced(reduced);
    std::printf("%s\n", reduced.dump(2).c_str());
    std::printf("reduced json written to %s\n", job.reduced_path().c_str());
    return 0;
  }

  const eval::Json reduced = dist::run_job(job, dist::self_exe(g_argv0),
                                           worker_options(args, /*verbose=*/true));
  std::printf("%s\n", reduced.dump(2).c_str());
  std::printf("reduced json written to %s\n", job.reduced_path().c_str());
  return 0;
}

/// `eval`: emit the deterministic surface-evaluation document — the SAME
/// bytes POST /v1/eval returns for the same surface (shared
/// serve::eval_document), so CI byte-diffs daemon against CLI.
int cmd_eval(const eval::Args& args) {
  args.expect_only(
      {"dataset", "layers", "weights-only", "biases-only", "backend", "json", "trace", "metrics"});
  select_backend(args);
  select_observability(args);
  const auto [weights, biases] = surface_flags(args);
  const std::string dataset = args.get("dataset", "digits");
  if (dataset != "digits" && dataset != "objects")
    throw std::invalid_argument("unknown --dataset \"" + dataset +
                                "\" (expected digits or objects)");
  models::ModelZoo zoo;
  models::ZooModel& model = dataset == "objects" ? zoo.objects() : zoo.digits();
  engine::SweepRunner runner(model, zoo.cache_dir(), /*verbose=*/false);
  const eval::Json doc =
      serve::eval_document(runner, dataset, backend::active_name(),
                           eval::split_csv(args.get("layers", "fc3")), weights, biases);
  if (const std::string path = args.get("json", ""); !path.empty()) {
    dist::write_json_atomic(path, doc);
    std::printf("eval json written to %s\n", path.c_str());
  } else {
    std::printf("%s\n", doc.dump(2).c_str());
  }
  return 0;
}

/// `serve`: the long-lived attack-service daemon. Loads every configured
/// model up front, then serves HTTP until SIGTERM/SIGINT (drain: finish
/// in-flight and queued requests, then exit 0) or, with --once, until the
/// first work request completes.
int cmd_serve(const eval::Args& args) {
  args.expect_only({"port", "threads", "max-batch", "max-delay-ms", "max-queue", "executors",
                    "datasets", "warm-layers", "backend", "compile", "once", "quiet", "trace",
                    "metrics"});
  select_backend(args);
  select_compile(args);
  select_observability(args);
  const bool quiet = args.has_flag("quiet");

  serve::ServiceOptions service_options;
  service_options.batcher.max_batch = positive_int(args, "max-batch", 8);
  service_options.batcher.max_queue = positive_int(args, "max-queue", 64);
  service_options.batcher.executors = positive_int(args, "executors", 2);
  const auto delay = args.get_int("max-delay-ms", service_options.batcher.max_delay_ms);
  if (delay < 0) throw std::invalid_argument("--max-delay-ms must be >= 0");
  service_options.batcher.max_delay_ms = static_cast<int>(delay);

  serve::HttpServerOptions server_options;
  const auto port = args.get_int("port", 0);
  if (port < 0 || port > 65535)
    throw std::invalid_argument("--port must be in [0, 65535] (0 = ephemeral)");
  server_options.port = static_cast<int>(port);
  server_options.threads = positive_int(args, "threads", 4);
  server_options.verbose = !quiet;

  // Models load and feature caches warm BEFORE the socket opens: the
  // first request is as fast as the thousandth.
  serve::ServeZooOptions zoo_options;
  zoo_options.datasets = args.get_list("datasets", "digits");
  zoo_options.warm_layers = args.get_list("warm-layers", "fc3");
  zoo_options.verbose = !quiet;
  serve::ServeZoo zoo(zoo_options);
  serve::AttackService service(zoo, service_options);

  serve::HttpServer server(server_options,
                           [&service](const serve::HttpRequest& r) { return service.handle(r); });
  const serve::DrainSignalGuard guard;
  server.start();
  // Scripts (loadgen, CI) parse this line for the ephemeral port.
  std::printf("fsa_serve listening on 127.0.0.1:%d (backend %s)\n", server.port(),
              service.backend().c_str());
  std::fflush(stdout);

  const bool once = args.has_flag("once");
  while (!serve::DrainSignalGuard::stop_requested()) {
    if (once && service.requests_handled() >= 1) break;
    usleep(50 * 1000);
  }
  // Graceful drain, mirroring `dist serve`: stop accepting, complete
  // every accepted and queued request, then report.
  server.stop();
  service.drain();
  const eval::Json stats = service.stats_json();
  if (!quiet)
    std::printf("serve: %lld request(s) handled, %lld batch(es), %lld shed%s\n",
                static_cast<long long>(service.requests_handled()),
                static_cast<long long>(stats.at("batches").get_int("count", 0)),
                static_cast<long long>(stats.at("requests").get_int("shed", 0)),
                serve::DrainSignalGuard::stop_requested() ? " (drained on signal)" : "");
  return 0;
}

int cmd_audit(const eval::Args& args) {
  args.expect_only({"dataset", "layers", "delta"});
  Context ctx(args.get("dataset", "digits"), args.get("layers", "fc3"), true, true);
  const Tensor delta = load_delta(args, ctx);
  Tensor after = ctx.bench->attack().theta0();
  after += delta;
  const eval::AuditReport rep = eval::audit_weights(ctx.bench->attack().theta0(), after);
  std::printf("audit: changed %s, max|dw| %.4f, mean shift %.5f, std ratio %.4f, KS %.4f\n",
              eval::pct(rep.changed_fraction).c_str(), rep.max_abs_change, rep.mean_shift,
              rep.std_ratio, rep.ks_statistic);
  std::printf("anomaly score: %.2f\n", eval::anomaly_score(rep));
  return 0;
}

int dispatch(int argc, char** argv) {
  // `dist` carries a sub-subcommand (run|reduce|status): shift it into
  // the parser's subcommand slot.
  if (argc > 1 && std::string(argv[1]) == "dist")
    return cmd_dist(eval::Args::parse(argc - 1, argv + 1));
  const eval::Args args = eval::Args::parse(argc, argv);
  if (args.command() == "info") return cmd_info();
  if (args.command() == "methods") return cmd_methods();
  if (args.command() == "backends") return cmd_backends();
  if (args.command() == "injectors") return cmd_injectors();
  if (args.command() == "defenses") return cmd_defenses();
  if (args.command() == "attack") return cmd_attack(args);
  if (args.command() == "sweep") return cmd_sweep(args);
  if (args.command() == "arena") return cmd_arena(args);
  if (args.command() == "campaign") return cmd_campaign(args);
  if (args.command() == "serve") return cmd_serve(args);
  if (args.command() == "eval") return cmd_eval(args);
  if (args.command() == "audit") return cmd_audit(args);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 0 && argv[0] && argv[0][0] != '\0') g_argv0 = argv[0];
  try {
    const int rc = dispatch(argc, argv);
    // Trace/metrics artifacts flush on success AND on a nonzero exit
    // (a failed attack's trace is exactly the one worth looking at).
    flush_observability();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fsa_cli: %s\n", e.what());
    return 2;
  }
}
