#!/usr/bin/env sh
# run_benches.sh — build Release, run the micro-op benchmarks, and APPEND a
# per-run entry (git sha, date, backend, full google-benchmark output) to
# the BENCH_micro_ops.json trajectory at the repo root, so successive PRs
# accumulate a comparable perf history instead of overwriting it.
#
#   tools/run_benches.sh [extra benchmark args...]
#
# Extra args are forwarded to bench_micro_ops (e.g. --benchmark_filter=Gemm
# or --benchmark_min_time=2). After the run, the delta of every benchmark
# against the PREVIOUS trajectory entry is printed (so perf regressions
# surface in review), followed by the GEMM speedup and per-backend
# comparison summaries. Appending and deltas need python3; without it the
# script falls back to the legacy overwrite-in-place behaviour.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
out_json="$repo_root/BENCH_micro_ops.json"
run_json="$build_dir/bench_micro_ops_run.json"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release

# Fail LOUDLY when the bench target is unavailable (google-benchmark not
# found at configure time, or the build broke): a silent no-op here leaves
# the BENCH_micro_ops.json trajectory without an entry for this sha, which
# reads as "no perf change" in review when it actually means "never ran".
if ! cmake --build "$build_dir" -j --target bench_micro_ops; then
  echo "run_benches.sh: ERROR: bench_micro_ops failed to build." >&2
  echo "  If CMake said 'google-benchmark not found; skipping bench_micro_ops'," >&2
  echo "  install google-benchmark and re-run; no trajectory entry was appended." >&2
  exit 1
fi
if [ ! -x "$build_dir/bench_micro_ops" ]; then
  echo "run_benches.sh: ERROR: $build_dir/bench_micro_ops is missing." >&2
  echo "  google-benchmark was not found at configure time, so the bench was" >&2
  echo "  skipped; install it and re-run. No trajectory entry was appended." >&2
  exit 1
fi

"$build_dir/bench_micro_ops" \
  --benchmark_out="$run_json" \
  --benchmark_out_format=json \
  "$@"

if [ ! -s "$run_json" ]; then
  echo "run_benches.sh: ERROR: bench run produced no JSON at $run_json;" >&2
  echo "  refusing to append an empty entry to the trajectory." >&2
  exit 1
fi

git_sha=$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)
run_date=$(date -u +%Y-%m-%dT%H:%M:%SZ)
backend=${FSA_BACKEND:-blocked}

if ! command -v python3 >/dev/null 2>&1; then
  # No python3, no appending — but NEVER clobber an accumulated trajectory
  # with a single raw run.
  if [ -f "$out_json" ] && grep -q '"runs"' "$out_json"; then
    echo "python3 not found; $out_json holds a trajectory, leaving it untouched" >&2
    echo "raw run output kept at $run_json" >&2
  else
    cp "$run_json" "$out_json"
    echo "python3 not found: wrote raw (non-appending) $out_json"
  fi
  exit 0
fi

python3 - "$run_json" "$out_json" "$git_sha" "$run_date" "$backend" <<'EOF'
import json, sys

run_path, out_path, sha, date, backend = sys.argv[1:6]

with open(run_path) as f:
    run = json.load(f)

# The trajectory file holds {"runs": [entry, ...]}, oldest first. A legacy
# raw google-benchmark file (pre-trajectory) is absorbed as its first entry.
try:
    with open(out_path) as f:
        trajectory = json.load(f)
    if "runs" not in trajectory:
        trajectory = {"runs": [{"sha": "legacy", "date": "", "backend": "blocked",
                                "benchmarks": trajectory.get("benchmarks", [])}]}
except (FileNotFoundError, json.JSONDecodeError):
    trajectory = {"runs": []}

entry = {
    "sha": sha,
    "date": date,
    "backend": backend,
    "context": run.get("context", {}),
    "benchmarks": run.get("benchmarks", []),
}
# Delta against the most recent entry with the SAME backend: comparing a
# reference run to a blocked run would flag spurious "regressions".
previous = next((r for r in reversed(trajectory["runs"])
                 if r.get("backend", "blocked") == backend), None)
trajectory["runs"].append(entry)

with open(out_path, "w") as f:
    json.dump(trajectory, f, indent=1)
    f.write("\n")
print(f"appended run {sha} ({backend}) to {out_path} "
      f"({len(trajectory['runs'])} run(s) in trajectory)")

times = {b["name"]: b["real_time"] for b in entry["benchmarks"]}

# ---- delta vs the previous trajectory entry (perf-regression review aid) ----
if previous is not None:
    prev_times = {b["name"]: b["real_time"] for b in previous.get("benchmarks", [])}
    common = [n for n in times if n in prev_times and prev_times[n] > 0]
    if common:
        print(f"\ndelta vs previous run {previous.get('sha', '?')} "
              f"({previous.get('backend', '?')}), real time "
              f"(negative = faster now):")
        for name in common:
            change = (times[name] - prev_times[name]) / prev_times[name] * 100.0
            flag = "  <-- regression?" if change > 10.0 else ""
            print(f"  {name}: {prev_times[name]:.3g} -> {times[name]:.3g} "
                  f"({change:+.1f}%){flag}")
    else:
        print("\n(no benchmarks in common with the previous entry; no delta)")
else:
    print(f"\n(no previous '{backend}' entry in the trajectory; no delta)")

# ---- GEMM speedup vs the frozen seed kernel --------------------------------
print("\nGEMM speedup vs seed serial kernel (real time):")
for size in (256, 512):
    seed = times.get(f"BM_GemmSeedSerial/{size}")
    if seed is None:
        continue
    for threads in (1, 2, 4):
        t = times.get(f"BM_Gemm/{size}/{threads}")
        if t:
            print(f"  {size}x{size}x{size} @ {threads} thread(s): {seed / t:.2f}x")

# ---- per-backend comparison (the packing win, L2-resident vs spilling) -----
rows = sorted((n, t) for n, t in times.items() if n.startswith("BM_GemmBackend/"))
if rows:
    print("\ncompute-backend GEMM comparison (real time):")
    for name, t in rows:
        print(f"  {name}: {t:.3g} ms")
    blocked = times.get("BM_GemmBackend/blocked/2048")
    packed = times.get("BM_GemmBackend/packed/2048")
    if blocked and packed:
        print(f"  packed speedup over blocked at the L2-spilling 2048^3: "
              f"{blocked / packed:.2f}x")
EOF

# ---- serve soak: fold daemon throughput/latency into the same entry ---------
# Start the HTTP daemon (fsa_serve), drive it with tools/loadgen (16
# concurrent clients of mixed sweep/eval traffic, byte-identity enforced
# by loadgen's exit code), and append {"serve": {throughput_rps, p50_ms,
# p99_ms}} to the trajectory entry written above — so the serving path
# accumulates a perf history alongside the GEMM numbers. Fails loudly:
# a missing serve datapoint must not read as "no change".
echo ""
echo "serve soak (fsa_serve + loadgen)..."
if ! cmake --build "$build_dir" -j --target fsa_cli loadgen; then
  echo "run_benches.sh: ERROR: fsa_cli/loadgen failed to build; no serve entry." >&2
  exit 1
fi

serve_log="$build_dir/serve_bench.log"
loadgen_json="$build_dir/loadgen_run.json"
printf '%s\n' '{"dataset": "digits", "specs": [{"method": "gda", "layers": ["fc3"], "S": 1, "R": 4, "seed": "3"}]}' > "$build_dir/serve_sweep_req.json"
printf '%s\n' '{"dataset": "digits", "layers": ["fc3"]}' > "$build_dir/serve_eval_req.json"

# Run from the repo root so the daemon shares .fsa_cache/ (a cold cache
# trains the digits model once, ~2 min; later runs boot in seconds). All
# later paths are absolute, so changing the script's cwd here is safe —
# and $! must be the daemon itself for the SIGTERM below to reach it.
cd "$repo_root"
"$build_dir/fsa_cli" serve --port 0 --max-batch 8 \
    --max-delay-ms 5 --datasets digits --warm-layers fc3 > "$serve_log" 2>&1 &
serve_pid=$!
port=""
i=0
while [ "$i" -lt 240 ]; do
  port=$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$serve_log" 2>/dev/null || true)
  [ -n "$port" ] && break
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "run_benches.sh: ERROR: fsa_serve exited before listening:" >&2
    cat "$serve_log" >&2
    exit 1
  fi
  sleep 1
  i=$((i + 1))
done
if [ -z "$port" ]; then
  echo "run_benches.sh: ERROR: fsa_serve never printed its port; log:" >&2
  cat "$serve_log" >&2
  kill -TERM "$serve_pid" 2>/dev/null || true
  exit 1
fi

soak_rc=0
"$build_dir/loadgen" --port "$port" --clients 16 --iterations 4 \
    --get /healthz \
    --post "/v1/sweep=$build_dir/serve_sweep_req.json,/v1/eval=$build_dir/serve_eval_req.json" \
    --json > "$loadgen_json" || soak_rc=$?
kill -TERM "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
if [ "$soak_rc" -ne 0 ] || [ ! -s "$loadgen_json" ]; then
  echo "run_benches.sh: ERROR: loadgen soak failed (rc=$soak_rc); serve log:" >&2
  cat "$serve_log" >&2
  exit 1
fi

python3 - "$loadgen_json" "$out_json" <<'EOF'
import json, sys

load_path, out_path = sys.argv[1:3]
with open(load_path) as f:
    load = json.load(f)
with open(out_path) as f:
    trajectory = json.load(f)

entry = trajectory["runs"][-1]
entry["serve"] = {
    "clients": load.get("clients", 0),
    "requests": load.get("requests", 0),
    "throughput_rps": load.get("throughput_rps", 0.0),
    "p50_ms": load.get("p50_ms", 0.0),
    "p99_ms": load.get("p99_ms", 0.0),
    "byte_identical": load.get("byte_identical", False),
}
with open(out_path, "w") as f:
    json.dump(trajectory, f, indent=1)
    f.write("\n")

previous = next((r["serve"] for r in reversed(trajectory["runs"][:-1]) if "serve" in r), None)
s = entry["serve"]
print(f"serve: {s['throughput_rps']:.1f} req/s, p50 {s['p50_ms']:.2f} ms, "
      f"p99 {s['p99_ms']:.2f} ms ({s['clients']} clients, "
      f"bodies {'byte-identical' if s['byte_identical'] else 'DIVERGENT'})")
if previous and previous.get("throughput_rps"):
    change = (s["throughput_rps"] - previous["throughput_rps"]) / previous["throughput_rps"] * 100.0
    flag = "  <-- regression?" if change < -10.0 else ""
    print(f"serve throughput vs previous entry: {change:+.1f}%{flag}")
EOF

# ---- compile stage: compiled-vs-uncompiled sweep throughput -----------------
# bench_compile times the same 48-row sweep with the forward-pass compiler
# off and on (packed backend, 4 threads) plus the per-instance clone cost
# (Sequential::clone vs CompiledModel::instance_net), and emits one JSON
# document on stdout. Folded into the trajectory entry as {"compile": ...}
# with a delta against the previous entry; a speedup below the 1.5x
# acceptance bar is flagged. Fails loudly, like the serve stage.
echo ""
echo "compile bench (compiled vs uncompiled sweeps)..."
if ! cmake --build "$build_dir" -j --target bench_compile; then
  echo "run_benches.sh: ERROR: bench_compile failed to build; no compile entry." >&2
  exit 1
fi

compile_json="$build_dir/bench_compile_run.json"
if ! "$build_dir/bench_compile" > "$compile_json"; then
  echo "run_benches.sh: ERROR: bench_compile failed (compiled sweep slower than uncompiled?)" >&2
  exit 1
fi
if [ ! -s "$compile_json" ]; then
  echo "run_benches.sh: ERROR: bench_compile produced no JSON; no compile entry." >&2
  exit 1
fi

python3 - "$compile_json" "$out_json" <<'EOF'
import json, sys

comp_path, out_path = sys.argv[1:3]
with open(comp_path) as f:
    comp = json.load(f)
with open(out_path) as f:
    trajectory = json.load(f)

entry = trajectory["runs"][-1]
entry["compile"] = {
    "threads": comp.get("threads", 0),
    "rows": comp.get("rows", 0),
    "fused_nodes": comp.get("fused_nodes", 0),
    "rows_per_sec_off": comp.get("rows_per_sec_off", 0.0),
    "rows_per_sec_on": comp.get("rows_per_sec_on", 0.0),
    "speedup": comp.get("speedup", 0.0),
    "clone_us_deep": comp.get("clone_us_deep", 0.0),
    "clone_us_instance": comp.get("clone_us_instance", 0.0),
}
with open(out_path, "w") as f:
    json.dump(trajectory, f, indent=1)
    f.write("\n")

c = entry["compile"]
bar = "" if c["speedup"] >= 1.5 else "  <-- BELOW the 1.5x acceptance bar"
print(f"compile: sweep {c['rows_per_sec_off']:.0f} -> {c['rows_per_sec_on']:.0f} rows/s "
      f"({c['speedup']:.2f}x at {c['threads']} threads){bar}")
print(f"compile: clone {c['clone_us_deep']:.1f} us -> instance_net "
      f"{c['clone_us_instance']:.1f} us")
previous = next((r["compile"] for r in reversed(trajectory["runs"][:-1]) if "compile" in r), None)
if previous and previous.get("rows_per_sec_on"):
    change = (c["rows_per_sec_on"] - previous["rows_per_sec_on"]) / previous["rows_per_sec_on"] * 100.0
    flag = "  <-- regression?" if change < -10.0 else ""
    print(f"compile throughput vs previous entry: {change:+.1f}%{flag}")
EOF

# ---- trace-overhead stage: span tracer cost on the hot sweep path -----------
# Re-run bench_compile with FSA_TRACE=on and compare rows/s against the
# untraced run above (same binary, same machine, back to back). The sweep
# rows here use the sba method, so the delta isolates the span tracer
# itself (OBS_SPAN in sweep.run/sweep.row/compile.*) rather than the
# ADMM convergence recording that also rides the trace flag. Folded into
# the trajectory entry as {"trace_overhead": ...}; the stage FAILS if
# tracing costs more than 3% of compiled-sweep throughput — the tracer's
# documented ceiling (docs/OBSERVABILITY.md).
echo ""
echo "trace-overhead bench (bench_compile with FSA_TRACE=on)..."
# Best-of-3 per variant, interleaved: single invocations on a shared CI
# box jitter by +-5%, which would make a 3% gate flaky; the best of 3
# warm runs is stable to ~1%.
rep=1
while [ "$rep" -le 3 ]; do
  if ! "$build_dir/bench_compile" > "$build_dir/bench_compile_off_$rep.json"; then
    echo "run_benches.sh: ERROR: untraced bench_compile rep $rep failed." >&2
    exit 1
  fi
  if ! FSA_TRACE=on "$build_dir/bench_compile" > "$build_dir/bench_compile_on_$rep.json"; then
    echo "run_benches.sh: ERROR: traced bench_compile rep $rep failed." >&2
    exit 1
  fi
  rep=$((rep + 1))
done

python3 - "$build_dir" "$out_json" <<'EOF'
import json, sys

build_dir, out_path = sys.argv[1:3]

def best(variant):
    rates = []
    for rep in (1, 2, 3):
        with open(f"{build_dir}/bench_compile_{variant}_{rep}.json") as f:
            rates.append(json.load(f).get("rows_per_sec_on", 0.0))
    return max(rates)

off = best("off")  # compiled sweep, tracing off
on = best("on")    # compiled sweep, tracing on
overhead = (off - on) / off * 100.0 if off > 0 else 0.0

with open(out_path) as f:
    trajectory = json.load(f)

entry = trajectory["runs"][-1]
entry["trace_overhead"] = {
    "rows_per_sec_untraced": off,
    "rows_per_sec_traced": on,
    "overhead_pct": overhead,
}
with open(out_path, "w") as f:
    json.dump(trajectory, f, indent=1)
    f.write("\n")

print(f"trace overhead: {off:.0f} -> {on:.0f} rows/s with FSA_TRACE=on "
      f"({overhead:+.1f}%)")
if overhead > 3.0:
    print(f"run_benches.sh: ERROR: span tracing costs {overhead:.1f}% of compiled-sweep "
          f"throughput, above the 3% ceiling", file=sys.stderr)
    sys.exit(1)
EOF

# ---- arena stage: attack↔defense evasion frontier ---------------------------
# bench_arena crosses the vanilla and detection-aware attacks against the
# deployed defenses (checksum/64, range/201/0.10, range/16/0) on digits
# fc3 at the paper's S=2 R=100 budget, reduces the rows through the arena
# reducer, and emits one JSON document on stdout. Its exit code enforces
# the acceptance bar: fsa-l2-evasive must evade strictly more often than
# vanilla fsa-l2 under the strict range deployment. Folded into the
# trajectory entry as {"arena": ...} with a delta against the previous
# entry; fails loudly, like the serve and compile stages.
echo ""
echo "arena bench (attack vs defense evasion frontier)..."
if ! cmake --build "$build_dir" -j --target bench_arena; then
  echo "run_benches.sh: ERROR: bench_arena failed to build; no arena entry." >&2
  exit 1
fi

arena_json="$build_dir/bench_arena_run.json"
if ! "$build_dir/bench_arena" > "$arena_json"; then
  echo "run_benches.sh: ERROR: bench_arena failed (detection-aware attack lost to vanilla?)" >&2
  exit 1
fi
if [ ! -s "$arena_json" ]; then
  echo "run_benches.sh: ERROR: bench_arena produced no JSON; no arena entry." >&2
  exit 1
fi

python3 - "$arena_json" "$out_json" <<'EOF'
import json, sys

arena_path, out_path = sys.argv[1:3]
with open(arena_path) as f:
    arena = json.load(f)
with open(out_path) as f:
    trajectory = json.load(f)

entry = trajectory["runs"][-1]
entry["arena"] = {
    "rows": arena.get("rows", 0),
    "rows_per_sec": arena.get("rows_per_sec", 0.0),
    "detect_rate": arena.get("detect_rate", 0.0),
    "evasion_rate": arena.get("evasion_rate", 0.0),
    "overhead_bytes": arena.get("overhead_bytes", 0),
}
with open(out_path, "w") as f:
    json.dump(trajectory, f, indent=1)
    f.write("\n")

a = entry["arena"]
print(f"arena: {a['rows']} cells at {a['rows_per_sec']:.2f} rows/s, "
      f"detect {a['detect_rate'] * 100.0:.0f}%, evade {a['evasion_rate'] * 100.0:.0f}%, "
      f"defense overhead {a['overhead_bytes']} B")
previous = next((r["arena"] for r in reversed(trajectory["runs"][:-1]) if "arena" in r), None)
if previous:
    if previous.get("rows_per_sec"):
        change = (a["rows_per_sec"] - previous["rows_per_sec"]) / previous["rows_per_sec"] * 100.0
        flag = "  <-- regression?" if change < -10.0 else ""
        print(f"arena throughput vs previous entry: {change:+.1f}%{flag}")
    dshift = (a["evasion_rate"] - previous.get("evasion_rate", 0.0)) * 100.0
    flag = "  <-- frontier moved?" if abs(dshift) > 0.5 else ""
    print(f"arena evasion rate vs previous entry: {dshift:+.1f} pp{flag}")
EOF
