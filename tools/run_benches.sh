#!/usr/bin/env sh
# run_benches.sh — build Release, run the micro-op benchmarks, and write the
# machine-readable BENCH_micro_ops.json trajectory at the repo root.
#
#   tools/run_benches.sh [extra benchmark args...]
#
# Extra args are forwarded to bench_micro_ops (e.g. --benchmark_filter=Gemm
# or --benchmark_min_time=2). If python3 is available, a serial-vs-parallel
# speedup summary for the GEMM sizes is printed from the JSON.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"
out_json="$repo_root/BENCH_micro_ops.json"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j --target bench_micro_ops

"$build_dir/bench_micro_ops" \
  --benchmark_out="$out_json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $out_json"

if command -v python3 >/dev/null 2>&1; then
  python3 - "$out_json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

times = {b["name"]: b["real_time"] for b in data.get("benchmarks", [])}
print("\nGEMM speedup vs seed serial kernel (real time):")
for size in (256, 512):
    seed = times.get(f"BM_GemmSeedSerial/{size}")
    if seed is None:
        continue
    for threads in (1, 2, 4):
        backend = times.get(f"BM_Gemm/{size}/{threads}")
        if backend:
            print(f"  {size}x{size}x{size} @ {threads} thread(s): {seed / backend:.2f}x")
EOF
fi
