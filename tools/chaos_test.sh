#!/usr/bin/env bash
# chaos_test.sh — crash-tolerance proof for the coordinator-free workers.
#
# Lays out one campaign job and one sweep job, points a fleet of
# `fsa_cli dist serve` workers at BOTH directories, then repeatedly
# SIGKILLs random workers mid-shard and starts replacements. Dead workers
# stop renewing their lease heartbeats, so the survivors reclaim the
# orphaned shards; the run is over when every shard has a result. The
# acceptance check is the dist subsystem's headline contract: the chaos
# run's reduced.json must be BYTE-identical to a clean --workers 1 run,
# for both job kinds.
#
# Usage: tools/chaos_test.sh <path-to-fsa_cli> [workdir]
# Tunables: CHAOS_WORKERS (default 4), CHAOS_CYCLES (kill/restart rounds,
# default 6), CHAOS_TIMEOUT (drain deadline in seconds, default 300).

set -u

CLI=${1:?usage: chaos_test.sh <path-to-fsa_cli> [workdir]}
CLI=$(readlink -f "$CLI")
WORK=${2:-$(mktemp -d /tmp/fsa_chaos.XXXXXX)}
WORKERS=${CHAOS_WORKERS:-4}
CYCLES=${CHAOS_CYCLES:-6}
TIMEOUT=${CHAOS_TIMEOUT:-300}

export FSA_CACHE_DIR="$WORK/cache"
mkdir -p "$WORK" "$FSA_CACHE_DIR"

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null
  done
  wait 2>/dev/null
}
trap cleanup EXIT

die() { echo "chaos_test: FAIL: $*" >&2; exit 1; }
say() { echo "chaos_test: $*"; }

# ---- reference artifacts (single worker, no chaos) ---------------------------

say "solving a digits delta for the campaign job"
"$CLI" attack --dataset digits --layers fc3 --s 1 --r 10 --seed 5 \
  --save "$WORK/delta.bin" >"$WORK/attack.log" 2>&1 || true  # partial hits are fine
[ -f "$WORK/delta.bin" ] || { cat "$WORK/attack.log" >&2; die "attack produced no delta"; }

say "reference campaign run (--workers 1)"
"$CLI" campaign --dataset digits --layers fc3 --delta "$WORK/delta.bin" \
  --injector rowhammer --shards 12 --seed 7 --workers 1 \
  --job "$WORK/camp_ref" >"$WORK/camp_ref.log" 2>&1 || true  # incomplete flips are fine
[ -f "$WORK/camp_ref/reduced.json" ] || { cat "$WORK/camp_ref.log" >&2; die "campaign reference did not reduce"; }

say "reference sweep run (--workers 1, warms the model cache)"
"$CLI" sweep --dataset digits --layers fc3 --s-list 1 --r-list 10 --seeds 1,2,3 \
  --no-acc --quiet --workers 1 --job "$WORK/sweep_ref" >"$WORK/sweep_ref.log" 2>&1 || true
[ -f "$WORK/sweep_ref/reduced.json" ] || { cat "$WORK/sweep_ref.log" >&2; die "sweep reference did not reduce"; }

# ---- chaos jobs: same manifests, fresh empty directories ---------------------

clone_job() {  # clone_job <src> <dst> — manifest first, job.json LAST
  mkdir -p "$2/results" "$2/logs" "$2/leases"
  cp "$1/manifest.json" "$2/manifest.json"
  cp "$1/job.json" "$2/job.json"
}
clone_job "$WORK/camp_ref" "$WORK/camp_chaos"
clone_job "$WORK/sweep_ref" "$WORK/sweep_chaos"
JOBS="$WORK/camp_chaos,$WORK/sweep_chaos"

start_worker() {
  local tag=$1
  "$CLI" dist serve --job "$JOBS" --poll-ms 50 --lease-expiry-ms 1500 \
    >"$WORK/serve_$tag.log" 2>&1 &
  pids+=($!)
  say "worker $tag started (pid $!)"
}

say "starting $WORKERS serve workers against both chaos jobs"
for i in $(seq 1 "$WORKERS"); do start_worker "$i"; done

# ---- kill/restart chaos ------------------------------------------------------

for cycle in $(seq 1 "$CYCLES"); do
  sleep 1
  victim_idx=$((RANDOM % ${#pids[@]}))
  victim=${pids[$victim_idx]}
  if kill -9 "$victim" 2>/dev/null; then
    say "cycle $cycle: SIGKILLed worker pid $victim mid-shard"
  else
    say "cycle $cycle: worker pid $victim already gone"
  fi
  wait "$victim" 2>/dev/null
  unset 'pids[victim_idx]'
  pids=("${pids[@]}")  # compact
  sleep 1
  start_worker "r$cycle"
done

# ---- drain -------------------------------------------------------------------

say "waiting for both jobs to drain (timeout ${TIMEOUT}s)"
deadline=$((SECONDS + TIMEOUT))
while :; do
  camp_done=0; sweep_done=0
  "$CLI" dist status --job "$WORK/camp_chaos" >/dev/null 2>&1 && camp_done=1
  "$CLI" dist status --job "$WORK/sweep_chaos" >/dev/null 2>&1 && sweep_done=1
  [ "$camp_done" = 1 ] && [ "$sweep_done" = 1 ] && break
  if [ "$SECONDS" -ge "$deadline" ]; then
    "$CLI" dist status --job "$WORK/camp_chaos" >&2 || true
    "$CLI" dist status --job "$WORK/sweep_chaos" >&2 || true
    tail -n 20 "$WORK"/serve_*.log >&2 || true
    die "jobs did not drain within ${TIMEOUT}s"
  fi
  sleep 2
done
say "both jobs drained; retiring the workers (SIGTERM)"
for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null; done
for pid in "${pids[@]}"; do wait "$pid" 2>/dev/null; done
pids=()

# ---- verdict: byte-identical reductions --------------------------------------

# The surviving workers already reduced on completion; re-reducing is
# idempotent and covers the (unlikely) case every worker died post-drain.
"$CLI" dist reduce --job "$WORK/camp_chaos" >/dev/null || die "campaign chaos reduce failed"
"$CLI" dist reduce --job "$WORK/sweep_chaos" >/dev/null || die "sweep chaos reduce failed"

cmp "$WORK/camp_ref/reduced.json" "$WORK/camp_chaos/reduced.json" \
  || die "campaign reduced.json drifted from the --workers 1 reference"
cmp "$WORK/sweep_ref/reduced.json" "$WORK/sweep_chaos/reduced.json" \
  || die "sweep reduced.json drifted from the --workers 1 reference"

reclaims=$(grep -h "reclaimed stale lease" "$WORK"/serve_*.log | wc -l)
say "PASS: both reductions byte-identical to the single-worker reference"
say "      ($WORKERS workers, $CYCLES kill/restart cycles, $reclaims lease reclaim(s))"
