// model_report.cpp — diagnostic: accuracies of the zoo models on all three
// image roles (train / test / attack pool). Used to verify the synthetic
// datasets land in the paper's accuracy regimes (≈99.5% digits, ≈79.5%
// objects) before running the experiment sweeps.
//
// Usage: model_report [digits|objects|both]
#include <cstdio>
#include <cstring>

#include "models/model_zoo.h"
#include "optim/trainer.h"

namespace {

void report(fsa::models::ZooModel& m) {
  using fsa::optim::Trainer;
  std::printf("%s: train %.4f  test %.4f  pool %.4f  (n=%lld/%lld/%lld)\n", m.name.c_str(),
              Trainer::accuracy(m.net, m.train), Trainer::accuracy(m.net, m.test),
              Trainer::accuracy(m.net, m.attack_pool), static_cast<long long>(m.train.size()),
              static_cast<long long>(m.test.size()), static_cast<long long>(m.attack_pool.size()));
}

}  // namespace

int main(int argc, char** argv) {
  const char* which = argc > 1 ? argv[1] : "both";
  fsa::models::ModelZoo zoo;
  if (std::strcmp(which, "digits") == 0 || std::strcmp(which, "both") == 0) report(zoo.digits());
  if (std::strcmp(which, "objects") == 0 || std::strcmp(which, "both") == 0) report(zoo.objects());
  return 0;
}
