// loadgen.cpp — concurrent load driver for the fsa_serve daemon.
//
//   loadgen --port P [--host 127.0.0.1] [--clients 16] [--iterations 4]
//           [--get /healthz[,/stats...]]
//           [--post /v1/eval=payload.json[,/v1/sweep=other.json...]]
//           [--save-dir dir] [--json] [--expect-status 200]
//
// Spawns --clients threads; each runs --iterations passes over the full
// request list (GETs first, then POSTs, in flag order), recording every
// response's status, latency and body. After the run it:
//
//   * verifies BYTE-IDENTITY: for each request slot, every response body
//     across all clients × iterations must be identical — the serve
//     determinism contract under concurrency and dynamic batching;
//   * writes each slot's reference body to --save-dir/response_<i>.json
//     (exact bytes, so CI can `cmp` them against CLI artifacts);
//   * prints throughput and p50/p99 latency — human table by default,
//     a single JSON object with --json (consumed by run_benches.sh).
//
// Exit code: 0 only when every response matched --expect-status AND all
// bodies were byte-identical per slot.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/args.h"
#include "eval/json.h"
#include "serve/http.h"

namespace {

using namespace fsa;

struct RequestSpec {
  std::string method;
  std::string target;
  std::string body;
};

struct Sample {
  std::size_t slot = 0;
  int status = 0;
  double ms = 0.0;
  std::string body;
  std::string transport_error;
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) throw std::runtime_error("loadgen: cannot read payload file " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

double percentile(std::vector<double> sample, double p) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sample.size() - 1) + 0.5);
  return sample[std::min(rank, sample.size() - 1)];
}

int run(const eval::Args& args) {
  args.expect_only({"host", "port", "clients", "iterations", "get", "post", "save-dir", "json",
                    "expect-status"});
  const std::string host = args.get("host", "127.0.0.1");
  const int port = static_cast<int>(args.get_int("port", 0));
  if (port < 1) throw std::invalid_argument("--port is required");
  const int clients = static_cast<int>(args.get_int("clients", 16));
  const int iterations = static_cast<int>(args.get_int("iterations", 4));
  if (clients < 1 || iterations < 1)
    throw std::invalid_argument("--clients and --iterations must be >= 1");
  const int expect_status = static_cast<int>(args.get_int("expect-status", 200));

  std::vector<RequestSpec> specs;
  for (const std::string& target : args.get_list("get", ""))
    specs.push_back({"GET", target, ""});
  for (const std::string& pair : args.get_list("post", "")) {
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= pair.size())
      throw std::invalid_argument("--post expects /path=payload.json pairs, got \"" + pair +
                                  "\"");
    specs.push_back({"POST", pair.substr(0, eq), slurp(pair.substr(eq + 1))});
  }
  if (specs.empty())
    throw std::invalid_argument("nothing to send: pass --get and/or --post request specs");

  // Every client runs the same request sequence; samples land in a
  // preallocated per-client slice (no locking, no reordering).
  const std::size_t per_client = specs.size() * static_cast<std::size_t>(iterations);
  std::vector<std::vector<Sample>> all(static_cast<std::size_t>(clients));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::vector<Sample>& mine = all[static_cast<std::size_t>(c)];
      mine.reserve(per_client);
      for (int it = 0; it < iterations; ++it)
        for (std::size_t s = 0; s < specs.size(); ++s) {
          Sample sample;
          sample.slot = s;
          const auto a = std::chrono::steady_clock::now();
          try {
            const serve::HttpResponse r =
                serve::http_fetch(host, port, specs[s].method, specs[s].target, specs[s].body);
            sample.status = r.status;
            sample.body = r.body;
          } catch (const std::exception& e) {
            sample.transport_error = e.what();
          }
          sample.ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - a)
                          .count();
          mine.push_back(std::move(sample));
        }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // ---- verify: status codes and per-slot byte-identity -----------------------
  std::int64_t errors = 0;
  std::vector<double> latencies;
  std::vector<std::string> reference(specs.size());
  std::vector<bool> have_reference(specs.size(), false);
  bool identical = true;
  for (const auto& client_samples : all)
    for (const Sample& s : client_samples) {
      latencies.push_back(s.ms);
      if (!s.transport_error.empty() || s.status != expect_status) {
        ++errors;
        if (!s.transport_error.empty())
          std::fprintf(stderr, "loadgen: %s %s: %s\n", specs[s.slot].method.c_str(),
                       specs[s.slot].target.c_str(), s.transport_error.c_str());
        continue;
      }
      // /stats is live counters — exclude it from the identity check.
      if (specs[s.slot].target == "/stats") continue;
      if (!have_reference[s.slot]) {
        reference[s.slot] = s.body;
        have_reference[s.slot] = true;
      } else if (s.body != reference[s.slot]) {
        identical = false;
        std::fprintf(stderr, "loadgen: DIVERGENT response for %s %s (%zu vs %zu bytes)\n",
                     specs[s.slot].method.c_str(), specs[s.slot].target.c_str(), s.body.size(),
                     reference[s.slot].size());
      }
    }

  if (const std::string dir = args.get("save-dir", ""); !dir.empty()) {
    std::filesystem::create_directories(dir);
    for (std::size_t s = 0; s < specs.size(); ++s) {
      if (!have_reference[s]) continue;
      std::ofstream f(dir + "/response_" + std::to_string(s) + ".json", std::ios::binary);
      f << reference[s];
    }
  }

  const auto total = static_cast<std::int64_t>(latencies.size());
  eval::Json out = eval::Json::object();
  out.set("requests", eval::Json::number(total));
  out.set("errors", eval::Json::number(errors));
  out.set("clients", eval::Json::number(static_cast<std::int64_t>(clients)));
  out.set("seconds", eval::Json::number(elapsed));
  out.set("throughput_rps",
          eval::Json::number(elapsed > 0 ? static_cast<double>(total) / elapsed : 0.0));
  out.set("p50_ms", eval::Json::number(percentile(latencies, 0.50)));
  out.set("p99_ms", eval::Json::number(percentile(latencies, 0.99)));
  out.set("byte_identical", eval::Json::boolean(identical));

  if (args.has_flag("json")) {
    std::printf("%s\n", out.dump(2).c_str());
  } else {
    std::printf("loadgen: %lld request(s) from %d client(s) in %.2f s — %.1f req/s, "
                "p50 %.2f ms, p99 %.2f ms, %lld error(s), bodies %s\n",
                static_cast<long long>(total), clients, elapsed,
                out.get_number("throughput_rps", 0.0), out.get_number("p50_ms", 0.0),
                out.get_number("p99_ms", 0.0), static_cast<long long>(errors),
                identical ? "byte-identical" : "DIVERGENT");
  }
  return errors == 0 && identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(fsa::eval::Args::parse(argc, argv));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "loadgen: %s\n", e.what());
    return 2;
  }
}
